"""Property tests: codec round-trips are exact, not approximately so.

Three contracts the refactor must keep, checked across hypothesis-built
datasets rather than one fixture:

* text → columnar → text re-export is **byte-identical**, file by file;
* a memory-mapped list's ``ids()`` equals eager interning exactly;
* :func:`dataset_fingerprint` agrees across codecs — and still equals
  the value the pre-codec-registry layout produced (pinned below).
"""

import tempfile
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Breakdown,
    BrowsingDataset,
    Metric,
    Month,
    Platform,
    RankedList,
    SiteVocabulary,
    TrafficDistribution,
)
from repro.export.io import (
    dataset_fingerprint,
    load_dataset,
    save_dataset,
    sorted_breakdowns,
)
from repro.store.format import pack_string_table, unpack_string_table

from .conftest import make_tiny_dataset

# ``str.splitlines`` boundaries cannot appear in a text-codec site name;
# surrogates cannot be UTF-8 encoded.  Everything else is fair game.
_SITE_CHARS = st.characters(
    blacklist_categories=("Cs",),
    blacklist_characters="\n\r\x0b\x0c\x1c\x1d\x1e\x85\u2028\u2029",
)
sites = st.text(alphabet=_SITE_CHARS, min_size=1, max_size=12)
site_lists = st.lists(sites, min_size=0, max_size=8, unique=True)

_GRID = tuple(
    Breakdown(country, platform, metric, Month(2022, 2))
    for country in ("US", "KR")
    for platform in Platform.studied()
    for metric in Metric.studied()
)

_DIST = TrafficDistribution([(1, 0.17), (10, 0.4), (10_000, 0.95)])
_DISTRIBUTIONS = {
    (platform, metric): _DIST
    for platform in Platform.studied()
    for metric in Metric.studied()
}

metadata_values = st.one_of(
    st.integers(min_value=-(10**9), max_value=10**9),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(alphabet=_SITE_CHARS, max_size=10),
    st.booleans(),
)
metadata = st.dictionaries(
    st.text(alphabet=_SITE_CHARS, min_size=1, max_size=8).filter(
        lambda k: k != "fingerprint"
    ),
    metadata_values,
    max_size=3,
)


@st.composite
def datasets(draw):
    lists = draw(
        st.dictionaries(
            st.sampled_from(_GRID), site_lists, min_size=1, max_size=4
        )
    )
    return BrowsingDataset(
        {b: RankedList(s) for b, s in lists.items()},
        _DISTRIBUTIONS,
        draw(metadata),
    )


def _tree_bytes(root: Path) -> dict[str, bytes]:
    return {
        str(p.relative_to(root)): p.read_bytes()
        for p in sorted(root.rglob("*"))
        if p.is_file()
    }


class TestCodecRoundTrips:
    @given(datasets())
    @settings(max_examples=25, deadline=None)
    def test_text_columnar_text_is_byte_identical(self, dataset):
        with tempfile.TemporaryDirectory() as tmp:
            tmp = Path(tmp)
            save_dataset(dataset, tmp / "a", format="text")
            save_dataset(load_dataset(tmp / "a"), tmp / "b",
                         format="columnar")
            save_dataset(load_dataset(tmp / "b"), tmp / "c", format="text")
            assert _tree_bytes(tmp / "a") == _tree_bytes(tmp / "c")

    @given(datasets())
    @settings(max_examples=25, deadline=None)
    def test_mapped_ids_equal_eager_interning(self, dataset):
        with tempfile.TemporaryDirectory() as tmp:
            root = Path(tmp) / "ds"
            save_dataset(dataset, root, format="columnar")
            mapped = load_dataset(root)
            mapped_vocab = mapped.vocabulary()
            eager_vocab = SiteVocabulary()
            for breakdown in sorted_breakdowns(dataset):
                expected = dataset[breakdown].ids(eager_vocab)
                got = mapped[breakdown].ids(mapped_vocab)
                assert got.tolist() == expected.tolist()
                assert mapped[breakdown].sites == dataset[breakdown].sites

    @given(datasets())
    @settings(max_examples=25, deadline=None)
    def test_fingerprint_agrees_across_codecs(self, dataset):
        with tempfile.TemporaryDirectory() as tmp:
            tmp = Path(tmp)
            save_dataset(dataset, tmp / "text", format="text")
            save_dataset(dataset, tmp / "col", format="columnar")
            expected = dataset_fingerprint(dataset)
            assert dataset_fingerprint(load_dataset(tmp / "text")) == expected
            assert dataset_fingerprint(load_dataset(tmp / "col")) == expected


class TestStringTable:
    @given(st.lists(st.text(alphabet=_SITE_CHARS, max_size=20), max_size=32))
    @settings(max_examples=50, deadline=None)
    def test_pack_unpack_identity(self, names):
        packed = pack_string_table(names)
        assert unpack_string_table(packed, Path("x")) == tuple(names)


class TestFingerprintPin:
    """The content hash is an on-disk contract; the refactor must not move it.

    This value was produced by the pre-registry ``dataset_fingerprint``
    on the same two-breakdown fixture.  If it changes, every existing
    artifact store and slice cache silently goes cold.
    """

    PINNED = "026da0e712715033"

    def test_pre_refactor_value(self):
        assert dataset_fingerprint(make_tiny_dataset(metadata={})) == \
            self.PINNED

    def test_pin_survives_both_codecs(self, tmp_path):
        dataset = make_tiny_dataset(metadata={})
        save_dataset(dataset, tmp_path / "text", format="text")
        save_dataset(dataset, tmp_path / "col", format="columnar")
        assert dataset_fingerprint(load_dataset(tmp_path / "text")) == \
            self.PINNED
        assert dataset_fingerprint(load_dataset(tmp_path / "col")) == \
            self.PINNED
