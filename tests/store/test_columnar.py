"""Tests for the columnar dataset layout and its memory-mapped view."""

import numpy as np
import pytest

from repro.core import Metric, Platform, SiteVocabulary
from repro.core.errors import DatasetError, MissingBreakdownError
from repro.export.io import dataset_fingerprint
from repro.store import (
    LISTS_NAME,
    MANIFEST_NAME,
    VOCAB_NAME,
    MappedBrowsingDataset,
    open_columnar,
    write_columnar,
)
from repro.store.format import (
    HEADER_SIZE,
    MAGIC_LISTS,
    MAGIC_MANIFEST,
    MAGIC_VOCAB,
    pack_header,
    pack_manifest,
    unpack_manifest,
)

from .conftest import KR_TIME, US_PAGE_LOADS, make_tiny_dataset


@pytest.fixture()
def columnar_root(tiny_dataset, tmp_path):
    return write_columnar(tiny_dataset, tmp_path / "ds")


class TestLayout:
    def test_exactly_three_files(self, columnar_root):
        assert sorted(p.name for p in columnar_root.iterdir()) == [
            LISTS_NAME, MANIFEST_NAME, VOCAB_NAME,
        ]

    def test_every_file_carries_its_magic(self, columnar_root):
        for name, magic in (
            (VOCAB_NAME, MAGIC_VOCAB),
            (LISTS_NAME, MAGIC_LISTS),
            (MANIFEST_NAME, MAGIC_MANIFEST),
        ):
            assert (columnar_root / name).read_bytes()[:8] == magic

    def test_ids_are_contiguous_int32_in_canonical_order(self, columnar_root):
        # Canonical sort puts KR before US; vocabulary ids are
        # first-seen over that order, with "google" shared.
        raw = (columnar_root / LISTS_NAME).read_bytes()[HEADER_SIZE:]
        ids = np.frombuffer(raw, dtype=np.int32)
        assert ids.tolist() == [0, 1, 2, 1, 3, 4]

    def test_manifest_records_windows_and_fingerprints(
        self, tiny_dataset, columnar_root
    ):
        path = columnar_root / MANIFEST_NAME
        manifest = unpack_manifest(path.read_bytes(), path)
        assert manifest["dataset_fingerprint"] == \
            dataset_fingerprint(tiny_dataset)
        windows = {
            (e["country"], e["offset"], e["length"])
            for e in manifest["breakdowns"]
        }
        assert windows == {("KR", 0, 3), ("US", 3, 3)}
        for name in (VOCAB_NAME, LISTS_NAME):
            record = manifest["files"][name]
            data = (columnar_root / name).read_bytes()
            assert record["bytes"] == len(data)
            import hashlib

            assert record["sha256"] == hashlib.sha256(data).hexdigest()

    def test_no_temp_file_litter(self, columnar_root):
        assert not [p for p in columnar_root.iterdir()
                    if p.name.startswith(".")]


class TestMappedDataset:
    def test_open_returns_mapped_dataset(self, columnar_root):
        mapped = open_columnar(columnar_root)
        assert isinstance(mapped, MappedBrowsingDataset)
        assert mapped.storage == "columnar-mmap"

    def test_opening_is_lazy_then_materialises_on_read(self, columnar_root):
        mapped = open_columnar(columnar_root)
        assert mapped.pending == 2
        assert mapped[US_PAGE_LOADS].sites == \
            ("google", "youtube.com", "café.example")
        assert mapped.pending == 1
        assert mapped[KR_TIME].sites == ("naver.com", "google", "daum.net")
        assert mapped.pending == 0

    def test_lists_match_the_eager_dataset(self, tiny_dataset, columnar_root):
        mapped = open_columnar(columnar_root)
        for breakdown in tiny_dataset.breakdowns():
            assert mapped[breakdown] == tiny_dataset[breakdown]

    def test_metadata_and_distributions_survive(
        self, tiny_dataset, columnar_root
    ):
        mapped = open_columnar(columnar_root)
        assert dict(mapped.metadata) == dict(tiny_dataset.metadata)
        original = tiny_dataset.distribution(
            Platform.WINDOWS, Metric.PAGE_LOADS
        )
        restored = mapped.distribution(Platform.WINDOWS, Metric.PAGE_LOADS)
        for rank in (1, 100, 9_999):
            assert restored.cumulative_share(rank) == pytest.approx(
                original.cumulative_share(rank)
            )

    def test_all_sites_without_materialising(self, columnar_root):
        mapped = open_columnar(columnar_root)
        assert mapped.all_sites() == {
            "google", "youtube.com", "café.example", "naver.com", "daum.net",
        }
        assert mapped.pending == 2  # bulk decode touches no list window

    def test_missing_breakdown_still_raises(self, columnar_root):
        mapped = open_columnar(columnar_root)
        bad = US_PAGE_LOADS.with_country("XX")
        with pytest.raises(MissingBreakdownError):
            mapped[bad]

    def test_content_fingerprint_resolves_without_metadata(self, tmp_path):
        # No "fingerprint" metadata key: the eager dataset hashes its
        # lists, the mapped one reads the manifest record instead.
        dataset = make_tiny_dataset(metadata={})
        root = write_columnar(dataset, tmp_path / "ds")
        mapped = open_columnar(root)
        assert mapped.content_fingerprint == dataset_fingerprint(dataset)
        assert dataset_fingerprint(mapped) == dataset_fingerprint(dataset)
        assert mapped.pending == 2  # fingerprinting read no list


class TestZeroCopyIds:
    def test_mapped_ids_share_lists_bin_pages(self, columnar_root):
        mapped = open_columnar(columnar_root)
        vocab = mapped.vocabulary()
        arr = mapped[US_PAGE_LOADS].ids(vocab)
        assert np.shares_memory(arr, mapped._ids)

    def test_mapped_ids_equal_eager_interning(
        self, tiny_dataset, columnar_root
    ):
        from repro.export.io import sorted_breakdowns

        mapped = open_columnar(columnar_root)
        mapped_vocab = mapped.vocabulary()
        eager_vocab = SiteVocabulary()
        for breakdown in sorted_breakdowns(tiny_dataset):
            expected = tiny_dataset[breakdown].ids(eager_vocab)
            assert mapped[breakdown].ids(mapped_vocab).tolist() == \
                expected.tolist()

    def test_vocabulary_reproduces_stored_id_space(self, columnar_root):
        mapped = open_columnar(columnar_root)
        vocab = mapped.vocabulary()
        assert vocab.names() == mapped._table.decode_all()


class TestErrors:
    def test_missing_manifest(self, tmp_path):
        with pytest.raises(DatasetError, match="no manifest.bin"):
            open_columnar(tmp_path)

    def test_missing_lists_file_names_it(self, columnar_root):
        (columnar_root / LISTS_NAME).unlink()
        with pytest.raises(DatasetError, match="torn.*lists.bin.*absent"):
            open_columnar(columnar_root)

    def test_missing_vocab_file_names_it(self, columnar_root):
        (columnar_root / VOCAB_NAME).unlink()
        with pytest.raises(DatasetError, match="vocabulary file"):
            open_columnar(columnar_root)

    def test_truncated_lists_file(self, columnar_root):
        path = columnar_root / LISTS_NAME
        path.write_bytes(path.read_bytes()[:-4])
        with pytest.raises(DatasetError, match="short id file"):
            open_columnar(columnar_root)

    def test_truncated_vocab_file(self, columnar_root):
        path = columnar_root / VOCAB_NAME
        path.write_bytes(path.read_bytes()[:HEADER_SIZE + 8])
        with pytest.raises(DatasetError, match="short vocabulary"):
            open_columnar(columnar_root)

    def test_bad_magic(self, columnar_root):
        path = columnar_root / VOCAB_NAME
        data = path.read_bytes()
        path.write_bytes(b"NOTMAGIC" + data[8:])
        with pytest.raises(DatasetError, match="bad magic"):
            open_columnar(columnar_root)

    def test_future_layout_version(self, columnar_root):
        path = columnar_root / LISTS_NAME
        data = path.read_bytes()
        count = int(np.frombuffer(data, dtype="<u8", count=1, offset=16)[0])
        path.write_bytes(
            pack_header(MAGIC_LISTS, count, version=99) + data[HEADER_SIZE:]
        )
        with pytest.raises(DatasetError, match="version 99"):
            open_columnar(columnar_root)

    def _rewrite_manifest(self, root, mutate):
        path = root / MANIFEST_NAME
        manifest = unpack_manifest(path.read_bytes(), path)
        mutate(manifest)
        path.write_bytes(pack_manifest(manifest))

    def test_duplicate_manifest_entry_rejected(self, columnar_root):
        self._rewrite_manifest(
            columnar_root,
            lambda m: m["breakdowns"].append(dict(m["breakdowns"][0])),
        )
        with pytest.raises(DatasetError, match="duplicate manifest entry"):
            open_columnar(columnar_root)

    def test_window_past_end_of_ids_rejected(self, columnar_root):
        def mutate(manifest):
            manifest["breakdowns"][0]["length"] += 1_000

        self._rewrite_manifest(columnar_root, mutate)
        with pytest.raises(DatasetError, match="short lists.bin"):
            open_columnar(columnar_root)

    def test_malformed_breakdown_entry_rejected(self, columnar_root):
        def mutate(manifest):
            del manifest["breakdowns"][0]["offset"]

        self._rewrite_manifest(columnar_root, mutate)
        with pytest.raises(DatasetError, match="malformed breakdown entry"):
            open_columnar(columnar_root)

    def test_id_outside_vocabulary_detected_on_materialise(
        self, columnar_root
    ):
        path = columnar_root / LISTS_NAME
        data = bytearray(path.read_bytes())
        data[HEADER_SIZE:HEADER_SIZE + 4] = np.int32(99).tobytes()
        path.write_bytes(bytes(data))
        mapped = open_columnar(columnar_root)
        with pytest.raises(DatasetError, match="outside the 5-entry"):
            mapped[KR_TIME]

    def test_unsupported_manifest_version(self, columnar_root):
        path = columnar_root / MANIFEST_NAME
        manifest = unpack_manifest(path.read_bytes(), path)
        manifest["format_version"] = 999
        path.write_bytes(pack_manifest(manifest))
        with pytest.raises(DatasetError, match="version 999"):
            open_columnar(columnar_root)
