"""Incremental month ingestion: append parity, idempotency, versioning.

The contract under test is the one `repro ingest` sells: growing a
saved dataset month by month produces exactly the rank lists a full
regeneration would have, re-ingesting present months is a byte-level
no-op, every superseded manifest stays loadable through ``as_of=``, and
a reader holding the dataset open across an ingest keeps seeing the
version it opened.
"""

from __future__ import annotations

import hashlib

import pytest

from repro.core import Metric, Month, Platform
from repro.core.errors import DatasetError
from repro.export.io import (
    UnknownVersionError,
    dataset_versions,
    latest_version,
    load_dataset,
    save_dataset,
)
from repro.store import ingest_months
from repro.synth import GeneratorConfig

COUNTRIES = ("US", "DE", "IN")
PLATFORMS = (Platform.WINDOWS,)
METRICS = (Metric.PAGE_LOADS,)
BASE_MONTHS = (Month(2021, 9), Month(2021, 10))
NEW_MONTH = Month(2021, 11)
ALL_MONTHS = BASE_MONTHS + (NEW_MONTH,)
CONFIG = GeneratorConfig.small()


def _tree_hash(root) -> str:
    """One digest over every file (path + bytes) under ``root``."""
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*")):
        if path.is_file():
            digest.update(str(path.relative_to(root)).encode())
            digest.update(path.read_bytes())
    return digest.hexdigest()


@pytest.fixture(scope="module")
def base_dataset(generator):
    return generator.generate(
        countries=COUNTRIES, platforms=PLATFORMS,
        metrics=METRICS, months=BASE_MONTHS,
    )


@pytest.fixture(scope="module")
def full_dataset(generator):
    return generator.generate(
        countries=COUNTRIES, platforms=PLATFORMS,
        metrics=METRICS, months=ALL_MONTHS,
    )


@pytest.fixture(scope="module", params=("text", "columnar"))
def grown(request, base_dataset, tmp_path_factory):
    """A saved two-month dataset with the third month ingested."""
    fmt = request.param
    root = tmp_path_factory.mktemp(f"ingest-{fmt}") / "data"
    save_dataset(base_dataset, root, format=fmt)
    report = ingest_months(root, [NEW_MONTH], config=CONFIG)
    return fmt, root, report


class TestIngest:
    def test_report_records_the_delta(self, grown):
        fmt, _, report = grown
        assert report.changed
        assert report.format == fmt
        assert (report.version_before, report.version) == (1, 2)
        assert report.months_added == (str(NEW_MONTH),)
        assert report.months_present == tuple(str(m) for m in ALL_MONTHS)
        # 3 countries x 1 platform x 1 metric for the one new month.
        assert report.slices_added == 3

    def test_grown_dataset_matches_full_generation(self, grown, full_dataset):
        _, root, _ = grown
        dataset = load_dataset(root)
        assert tuple(dataset.months) == ALL_MONTHS
        assert dataset.version == 2
        for breakdown in full_dataset.breakdowns():
            assert list(dataset[breakdown].sites) == \
                list(full_dataset[breakdown].sites)

    def test_reingest_is_a_byte_identical_noop(self, grown):
        _, root, report = grown
        before = _tree_hash(root)
        again = ingest_months(root, [NEW_MONTH], config=CONFIG)
        assert not again.changed
        assert again.version == report.version
        assert again.months_added == ()
        assert _tree_hash(root) == before

    def test_previous_version_stays_loadable(self, grown, base_dataset):
        _, root, _ = grown
        assert dataset_versions(root) == (1, 2)
        assert latest_version(root) == 2
        old = load_dataset(root, as_of=1)
        assert old.version == 1
        assert tuple(old.months) == BASE_MONTHS
        for breakdown in base_dataset.breakdowns():
            assert list(old[breakdown].sites) == \
                list(base_dataset[breakdown].sites)

    def test_unknown_version_lists_the_available_ones(self, grown):
        _, root, _ = grown
        with pytest.raises(UnknownVersionError) as excinfo:
            load_dataset(root, as_of=7)
        assert "available versions: 1, 2" in str(excinfo.value)

    def test_mismatched_config_is_rejected(self, base_dataset, tmp_path):
        root = tmp_path / "data"
        save_dataset(base_dataset, root, format="text")
        before = _tree_hash(root)
        with pytest.raises(DatasetError, match="fingerprint"):
            ingest_months(
                root, [NEW_MONTH], config=GeneratorConfig.small(seed=7)
            )
        assert _tree_hash(root) == before


class TestReadDuringIngest:
    def test_open_reader_keeps_its_version(self, base_dataset, tmp_path):
        """A mapped reader opened before an ingest never sees the update.

        The ingest grows ``lists.bin``/``vocab.bin`` append-only and
        swaps each with ``os.replace``; the reader's mmap pins the old
        inode and its in-memory manifest still describes it, so every
        read it makes is consistent with the version it opened.
        """
        root = tmp_path / "data"
        save_dataset(base_dataset, root, format="columnar")
        reader = load_dataset(root)
        expected = {
            b: list(base_dataset[b].sites) for b in base_dataset.breakdowns()
        }

        ingest_months(root, [NEW_MONTH], config=CONFIG)

        assert reader.version == 1
        assert tuple(reader.months) == BASE_MONTHS
        for breakdown, sites in expected.items():
            assert list(reader[breakdown].sites) == sites
        # A fresh open sees the new version alongside the old reader.
        assert load_dataset(root).version == 2
