"""Shared fixtures for the columnar-store tests: a hand-built tiny dataset."""

from __future__ import annotations

import pytest

from repro.core import (
    Breakdown,
    BrowsingDataset,
    Metric,
    Month,
    Platform,
    RankedList,
    TrafficDistribution,
)

US_PAGE_LOADS = Breakdown(
    "US", Platform.WINDOWS, Metric.PAGE_LOADS, Month(2022, 2)
)
KR_TIME = Breakdown(
    "KR", Platform.ANDROID, Metric.TIME_ON_PAGE, Month(2022, 2)
)


def make_tiny_dataset(metadata=None) -> BrowsingDataset:
    """Two breakdowns, one shared site, one non-ASCII name."""
    dist = TrafficDistribution(
        [(1, 0.17), (10, 0.4), (100, 0.7), (10_000, 0.95)]
    )
    return BrowsingDataset(
        {
            US_PAGE_LOADS: RankedList(["google", "youtube.com", "café.example"]),
            KR_TIME: RankedList(["naver.com", "google", "daum.net"]),
        },
        {
            (Platform.WINDOWS, Metric.PAGE_LOADS): dist,
            (Platform.ANDROID, Metric.TIME_ON_PAGE): dist,
        },
        metadata if metadata is not None else {"seed": 7, "note": "tiny"},
    )


@pytest.fixture()
def tiny_dataset() -> BrowsingDataset:
    return make_tiny_dataset()
