"""Batched grid generation must be byte-identical to the per-slice path.

The batched scorer (:meth:`TelemetryGenerator.rank_lists_batch`) shares
every component of the score sum across the slices of a country's grid;
its contract is that sharing is *invisible* — each emitted list matches
the serial :meth:`rank_list` output byte for byte, through every route
a slice can take: direct calls, both executors with ``batch`` on and
off, the on-disk slice cache, and an incremental ingest append.
"""

from __future__ import annotations

import pytest

from repro.core import Breakdown, Metric, Month, Platform, STUDY_MONTHS
from repro.core.errors import GenerationError
from repro.engine import (
    GenerationEngine,
    ParallelExecutor,
    SerialExecutor,
    SliceCache,
    SlicePlan,
)
from repro.export.io import load_dataset, save_dataset
from repro.store import ingest_months
from repro.synth import GeneratorConfig, TelemetryGenerator

#: December 2021 sits inside the study months, so every full-grid case
#: below exercises the seasonal transient (category multipliers + extra
#: mixture) and the metric_churn boundary on both platforms.
assert Month(2021, 12) in STUDY_MONTHS

ALL_METRICS = (
    Metric.PAGE_LOADS,
    Metric.TIME_ON_PAGE,
    Metric.INITIATED_PAGE_LOADS,
)


def _blob(ranked) -> bytes:
    return ("\n".join(ranked.sites) + "\n").encode("utf-8")


def _full_grid(country: str) -> tuple[Breakdown, ...]:
    return tuple(
        Breakdown(country, platform, metric, month)
        for platform in Platform.studied()
        for metric in ALL_METRICS
        for month in STUDY_MONTHS
    )


class TestGeneratorParity:
    def test_full_grid_byte_identical(self, generator):
        """Batched == serial over platforms × all metrics × all months."""
        for country in ("US", "KR", "NG"):
            grid = _full_grid(country)
            batched = generator.rank_lists_batch(country, grid)
            assert tuple(batched) == grid
            for breakdown in grid:
                serial = generator.rank_list(
                    breakdown.country, breakdown.platform,
                    breakdown.metric, breakdown.month,
                )
                assert _blob(serial) == _blob(batched[breakdown]), breakdown

    def test_cold_generator_matches_warm_serial(self, generator):
        """A fresh generator batching first (no caches primed by any
        serial call) still matches the session generator's serial path."""
        fresh = TelemetryGenerator(GeneratorConfig.small())
        grid = _full_grid("BR")
        batched = fresh.rank_lists_batch("BR", grid)
        for breakdown in grid:
            serial = generator.rank_list(
                "BR", breakdown.platform, breakdown.metric, breakdown.month
            )
            assert _blob(serial) == _blob(batched[breakdown]), breakdown

    def test_domains_emit_parity(self):
        cfg = GeneratorConfig.small(emit="domains")
        gen = TelemetryGenerator(cfg)
        grid = tuple(
            Breakdown("GB", platform, Metric.PAGE_LOADS, Month(2021, 12))
            for platform in Platform.studied()
        )
        batched = gen.rank_lists_batch("GB", grid)
        for breakdown in grid:
            serial = gen.rank_list(
                "GB", breakdown.platform, breakdown.metric, breakdown.month
            )
            assert _blob(serial) == _blob(batched[breakdown])

    def test_pre_origin_month_parity(self, generator):
        breakdown = Breakdown(
            "US", Platform.WINDOWS, Metric.PAGE_LOADS, Month(2021, 7)
        )
        serial = generator.rank_list(
            "US", Platform.WINDOWS, Metric.PAGE_LOADS, Month(2021, 7)
        )
        batched = generator.rank_lists_batch("US", (breakdown,))
        assert _blob(serial) == _blob(batched[breakdown])

    def test_foreign_breakdown_rejected(self, generator):
        foreign = Breakdown(
            "KR", Platform.WINDOWS, Metric.PAGE_LOADS, Month(2022, 2)
        )
        with pytest.raises(GenerationError):
            generator.rank_lists_batch("US", (foreign,))

    def test_unknown_country_rejected(self, generator):
        with pytest.raises(KeyError):
            generator.rank_lists_batch("XX", ())


class TestExecutorParity:
    PLAN = SlicePlan.from_grid(
        countries=("US", "KR", "NG"),
        platforms=Platform.studied(),
        metrics=Metric.studied(),
        months=(Month(2021, 12), Month(2022, 2)),
    )

    @pytest.fixture(scope="class")
    def reference(self, generator):
        """The per-slice serial output — the byte-identity anchor."""
        return SerialExecutor(batch=False).execute(
            generator.config, self.PLAN, generator=generator
        )

    def test_serial_batched_matches_reference(self, generator, reference):
        batched = SerialExecutor().execute(
            generator.config, self.PLAN, generator=generator
        )
        assert set(batched) == set(reference)
        for breakdown, ranked in reference.items():
            assert _blob(ranked) == _blob(batched[breakdown]), breakdown

    def test_parallel_batched_matches_reference(self, generator, reference):
        parallel = ParallelExecutor(jobs=2).execute(
            generator.config, self.PLAN, generator=generator
        )
        assert set(parallel) == set(reference)
        for breakdown, ranked in reference.items():
            assert _blob(ranked) == _blob(parallel[breakdown]), breakdown


class TestCacheParity:
    def test_cache_round_trip_preserves_batched_bytes(
        self, generator, tmp_path
    ):
        plan = SlicePlan.from_grid(
            countries=("US", "IN"),
            platforms=(Platform.ANDROID,),
            metrics=Metric.studied(),
            months=(Month(2021, 12),),
        )
        cache = SliceCache(tmp_path / "slices")
        engine = GenerationEngine(generator.config, cache=cache,
                                  generator=generator)
        produced = engine.run(plan)
        assert cache.stats.writes == len(plan)
        warm = GenerationEngine(generator.config, cache=cache,
                                generator=generator).run(plan)
        reference = SerialExecutor(batch=False).execute(
            generator.config, plan, generator=generator
        )
        for breakdown in plan.breakdowns():
            assert _blob(produced[breakdown]) == _blob(reference[breakdown])
            assert _blob(warm[breakdown]) == _blob(reference[breakdown])


class TestIngestParity:
    def test_append_through_batched_path_matches_full_per_slice(
        self, generator, tmp_path
    ):
        """Save two months, ingest a third (which routes through the
        batched engine), and compare every list against a per-slice
        generation of all three months."""
        countries = ("US", "DE")
        base_months = (Month(2021, 11), Month(2021, 12))
        new_month = Month(2022, 1)
        base = generator.generate(
            countries=countries, platforms=(Platform.WINDOWS,),
            metrics=(Metric.PAGE_LOADS,), months=base_months,
        )
        root = tmp_path / "data"
        save_dataset(base, root, format="text")
        report = ingest_months(root, [new_month], config=generator.config)
        assert report.changed

        grown = load_dataset(root)
        full_plan = SlicePlan.from_grid(
            countries=countries, platforms=(Platform.WINDOWS,),
            metrics=(Metric.PAGE_LOADS,),
            months=base_months + (new_month,),
        )
        reference = SerialExecutor(batch=False).execute(
            generator.config, full_plan, generator=generator
        )
        for breakdown, ranked in reference.items():
            assert _blob(grown[breakdown]) == _blob(ranked), breakdown
