"""Tests for slice planning: dedupe, ordering, per-country partitioning."""

from repro.core import Breakdown, Metric, Month, Platform, REFERENCE_MONTH
from repro.engine import CountryWorkUnit, SlicePlan, SliceRequest


def _b(country, platform=Platform.WINDOWS, metric=Metric.PAGE_LOADS,
       month=REFERENCE_MONTH):
    return Breakdown(country, platform, metric, month)


class TestSlicePlan:
    def test_from_grid_defaults_cover_study_grid(self):
        plan = SlicePlan.from_grid()
        assert len(plan) == 45 * 2 * 2
        assert len(plan.countries) == 45

    def test_deduplicates_requests(self):
        plan = SlicePlan([_b("US"), _b("US"), _b("KR")])
        assert len(plan) == 2
        assert plan.breakdowns() == (_b("KR"), _b("US"))

    def test_order_is_canonical_regardless_of_input_order(self):
        forward = SlicePlan([_b("US"), _b("KR"), _b("BR")])
        backward = SlicePlan([_b("BR"), _b("KR"), _b("US")])
        assert forward == backward
        assert forward.breakdowns() == (_b("BR"), _b("KR"), _b("US"))

    def test_accepts_requests_and_breakdowns(self):
        plan = SlicePlan([SliceRequest(_b("US")), _b("KR")])
        assert {r.country for r in plan} == {"US", "KR"}

    def test_partition_shards_by_country(self):
        plan = SlicePlan.from_grid(
            countries=("US", "KR"),
            months=(Month(2021, 12), REFERENCE_MONTH),
        )
        units = plan.partition()
        assert [u.country for u in units] == ["KR", "US"]
        assert all(isinstance(u, CountryWorkUnit) for u in units)
        assert all(len(u) == 2 * 2 * 2 for u in units)
        regrouped = [b for unit in units for b in unit.breakdowns()]
        assert len(regrouped) == len(plan)
        assert set(regrouped) == set(plan.breakdowns())

    def test_without_removes_done_breakdowns(self):
        plan = SlicePlan([_b("US"), _b("KR"), _b("BR")])
        remaining = plan.without([_b("KR")])
        assert remaining.breakdowns() == (_b("BR"), _b("US"))
        assert plan.without([]) == plan

    def test_request_properties(self):
        request = SliceRequest(_b("JP", Platform.ANDROID, Metric.TIME_ON_PAGE))
        assert request.country == "JP"
        assert request.platform is Platform.ANDROID
        assert request.metric is Metric.TIME_ON_PAGE
        assert request.month == REFERENCE_MONTH
        assert str(request) == "JP/android/time_on_page/2022-02"
