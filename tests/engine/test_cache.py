"""Tests for the content-addressed slice cache."""

import pytest

from repro.core import Breakdown, Metric, Platform, REFERENCE_MONTH
from repro.core.errors import DatasetError
from repro.core.rankedlist import RankedList
from repro.engine import SliceCache

B = Breakdown("US", Platform.WINDOWS, Metric.PAGE_LOADS, REFERENCE_MONTH)
FP = "deadbeef00112233"


class TestSliceCache:
    def test_round_trip_identity(self, tmp_path):
        cache = SliceCache(tmp_path)
        ranked = RankedList(["google.com", "youtube.com", "naver.com"])
        cache.put(FP, B, ranked)
        restored = cache.get(FP, B)
        assert restored is not None
        assert restored.sites == ranked.sites

    def test_miss_returns_none_and_counts(self, tmp_path):
        cache = SliceCache(tmp_path)
        assert cache.get(FP, B) is None
        assert cache.stats.misses == 1
        assert cache.stats.hits == 0
        cache.put(FP, B, RankedList(["a.com"]))
        assert cache.get(FP, B) is not None
        assert cache.stats == type(cache.stats)(hits=1, misses=1, writes=1)

    def test_fingerprints_are_isolated(self, tmp_path):
        cache = SliceCache(tmp_path)
        cache.put(FP, B, RankedList(["a.com"]))
        assert cache.get("0" * 16, B) is None
        assert (FP, B) in cache
        assert ("0" * 16, B) not in cache

    def test_files_are_greppable_text(self, tmp_path):
        cache = SliceCache(tmp_path)
        cache.put(FP, B, RankedList(["a.com", "b.org"]))
        path = cache.path_for(FP, B)
        assert path == tmp_path / FP / "US_windows_page_loads_2022-02.txt"
        assert path.read_text(encoding="utf-8") == "a.com\nb.org\n"
        # No temp-file litter from the atomic write.
        assert sorted(p.name for p in path.parent.iterdir()) == [path.name]

    def test_put_overwrites(self, tmp_path):
        cache = SliceCache(tmp_path)
        cache.put(FP, B, RankedList(["old.com"]))
        cache.put(FP, B, RankedList(["new.com"]))
        assert cache.get(FP, B).sites == ("new.com",)

    def test_empty_list_round_trips(self, tmp_path):
        cache = SliceCache(tmp_path)
        cache.put(FP, B, RankedList([]))
        restored = cache.get(FP, B)
        assert restored is not None
        assert len(restored) == 0


class TestColumnarCodec:
    def test_round_trip_identity(self, tmp_path):
        cache = SliceCache(tmp_path, codec="columnar")
        ranked = RankedList(["google.com", "youtube.com", "naver.com"])
        cache.put(FP, B, ranked)
        restored = cache.get(FP, B)
        assert restored is not None
        assert restored.sites == ranked.sites

    def test_writes_binary_slice_files(self, tmp_path):
        cache = SliceCache(tmp_path, codec="columnar")
        cache.put(FP, B, RankedList(["a.com"]))
        path = cache.path_for(FP, B)
        assert path.suffix == ".slc"
        assert path.read_bytes()[:8] == b"RPROSLC1"
        assert sorted(p.name for p in path.parent.iterdir()) == [path.name]

    def test_codecs_share_one_directory(self, tmp_path):
        # A text-configured engine reads slices a columnar one wrote,
        # and vice versa — a shared cache dir never goes cold.
        text = SliceCache(tmp_path)
        columnar = SliceCache(tmp_path, codec="columnar")
        columnar.put(FP, B, RankedList(["binary.example"]))
        other = B.with_country("KR")
        text.put(FP, other, RankedList(["plain.example"]))
        assert text.get(FP, B).sites == ("binary.example",)
        assert columnar.get(FP, other).sites == ("plain.example",)
        assert (FP, B) in text and (FP, other) in columnar

    def test_empty_list_round_trips(self, tmp_path):
        cache = SliceCache(tmp_path, codec="columnar")
        cache.put(FP, B, RankedList([]))
        restored = cache.get(FP, B)
        assert restored is not None
        assert len(restored) == 0

    def test_truncated_slice_raises_instead_of_short_list(self, tmp_path):
        cache = SliceCache(tmp_path, codec="columnar")
        cache.put(FP, B, RankedList(["a.com", "b.org", "c.net"]))
        path = cache.path_for(FP, B)
        path.write_bytes(path.read_bytes()[:-6])
        with pytest.raises(DatasetError):
            cache.get(FP, B)

    def test_unknown_codec_rejected(self, tmp_path):
        with pytest.raises(DatasetError, match="unknown slice-cache codec"):
            SliceCache(tmp_path, codec="parquet")
