"""Tests for the content-addressed slice cache."""

from repro.core import Breakdown, Metric, Platform, REFERENCE_MONTH
from repro.core.rankedlist import RankedList
from repro.engine import SliceCache

B = Breakdown("US", Platform.WINDOWS, Metric.PAGE_LOADS, REFERENCE_MONTH)
FP = "deadbeef00112233"


class TestSliceCache:
    def test_round_trip_identity(self, tmp_path):
        cache = SliceCache(tmp_path)
        ranked = RankedList(["google.com", "youtube.com", "naver.com"])
        cache.put(FP, B, ranked)
        restored = cache.get(FP, B)
        assert restored is not None
        assert restored.sites == ranked.sites

    def test_miss_returns_none_and_counts(self, tmp_path):
        cache = SliceCache(tmp_path)
        assert cache.get(FP, B) is None
        assert cache.stats.misses == 1
        assert cache.stats.hits == 0
        cache.put(FP, B, RankedList(["a.com"]))
        assert cache.get(FP, B) is not None
        assert cache.stats == type(cache.stats)(hits=1, misses=1, writes=1)

    def test_fingerprints_are_isolated(self, tmp_path):
        cache = SliceCache(tmp_path)
        cache.put(FP, B, RankedList(["a.com"]))
        assert cache.get("0" * 16, B) is None
        assert (FP, B) in cache
        assert ("0" * 16, B) not in cache

    def test_files_are_greppable_text(self, tmp_path):
        cache = SliceCache(tmp_path)
        cache.put(FP, B, RankedList(["a.com", "b.org"]))
        path = cache.path_for(FP, B)
        assert path == tmp_path / FP / "US_windows_page_loads_2022-02.txt"
        assert path.read_text(encoding="utf-8") == "a.com\nb.org\n"
        # No temp-file litter from the atomic write.
        assert sorted(p.name for p in path.parent.iterdir()) == [path.name]

    def test_put_overwrites(self, tmp_path):
        cache = SliceCache(tmp_path)
        cache.put(FP, B, RankedList(["old.com"]))
        cache.put(FP, B, RankedList(["new.com"]))
        assert cache.get(FP, B).sites == ("new.com",)

    def test_empty_list_round_trips(self, tmp_path):
        cache = SliceCache(tmp_path)
        cache.put(FP, B, RankedList([]))
        restored = cache.get(FP, B)
        assert restored is not None
        assert len(restored) == 0
