"""Tests for the generation engine: executors, cache wiring, lazy datasets."""

import pytest

import repro.synth.generator as generator_module
from repro.core import Breakdown, Metric, Platform, REFERENCE_MONTH
from repro.core.errors import GenerationError
from repro.engine import (
    GenerationEngine,
    LazyBrowsingDataset,
    ParallelExecutor,
    SliceCache,
    SlicePlan,
)

COUNTRIES = ("US", "KR", "BR")


def _blob(ranked):
    """The exact byte serialisation used by cache and export files."""
    return ("\n".join(ranked.sites) + "\n").encode("utf-8")


class _ExplodingExecutor:
    """An executor that must never run — cache-only paths use it."""

    name = "exploding"

    def execute(self, config, plan, generator=None):
        raise AssertionError("executor invoked although the cache was warm")


class TestSerialEngine:
    def test_matches_direct_generator_output(self, generator):
        engine = GenerationEngine(generator.config, generator=generator)
        via_engine = engine.generate(countries=COUNTRIES)
        via_generator = generator.generate(countries=COUNTRIES)
        assert set(via_engine.breakdowns()) == set(via_generator.breakdowns())
        for breakdown in via_engine.breakdowns():
            assert _blob(via_engine[breakdown]) == _blob(via_generator[breakdown])

    def test_metadata_records_fingerprint(self, generator):
        engine = GenerationEngine(generator.config, generator=generator)
        dataset = engine.generate(countries=("US",))
        assert dataset.metadata["fingerprint"] == generator.config.fingerprint()
        assert dataset.metadata["seed"] == generator.config.seed

    def test_rank_list_matches_generator(self, generator):
        engine = GenerationEngine(generator.config, generator=generator)
        ours = engine.rank_list("KR", Platform.ANDROID, Metric.TIME_ON_PAGE)
        theirs = generator.rank_list("KR", Platform.ANDROID, Metric.TIME_ON_PAGE)
        assert _blob(ours) == _blob(theirs)

    def test_run_returns_plan_order(self, generator):
        engine = GenerationEngine(generator.config, generator=generator)
        plan = SlicePlan.from_grid(countries=("US", "BR"))
        results = engine.run(plan)
        assert tuple(results) == plan.breakdowns()


class TestParallelExecutor:
    def test_byte_identical_to_serial(self, generator):
        config = generator.config
        serial = GenerationEngine(config, generator=generator).generate(
            countries=COUNTRIES
        )
        parallel = GenerationEngine(
            config, executor=ParallelExecutor(jobs=2)
        ).generate(countries=COUNTRIES)
        assert set(serial.breakdowns()) == set(parallel.breakdowns())
        for breakdown in serial.breakdowns():
            assert _blob(serial[breakdown]) == _blob(parallel[breakdown]), breakdown

    def test_single_unit_falls_back_to_serial(self, generator):
        executor = ParallelExecutor(jobs=4)
        plan = SlicePlan.from_grid(countries=("US",))
        results = executor.execute(generator.config, plan, generator=generator)
        assert set(results) == set(plan.breakdowns())

    def test_invalid_jobs_rejected(self):
        with pytest.raises(GenerationError):
            ParallelExecutor(jobs=0)

    def test_default_jobs_is_cpu_count(self):
        import os

        assert ParallelExecutor().jobs == (os.cpu_count() or 1)


class TestSliceCacheWiring:
    def test_cold_then_warm_round_trip(self, generator, tmp_path):
        cache = SliceCache(tmp_path / "slices")
        cold_engine = GenerationEngine(
            generator.config, cache=cache, generator=generator
        )
        cold = cold_engine.generate(countries=("US", "KR"))
        assert cache.stats.writes == len(cold)

        warm_engine = GenerationEngine(generator.config, cache=cache)
        warm = warm_engine.generate(countries=("US", "KR"))
        assert cache.stats.hits == len(cold)
        for breakdown in cold.breakdowns():
            assert _blob(cold[breakdown]) == _blob(warm[breakdown])

    def test_warm_cache_skips_universe_build_and_scoring(
        self, generator, tmp_path, monkeypatch
    ):
        cache = SliceCache(tmp_path / "slices")
        GenerationEngine(
            generator.config, cache=cache, generator=generator
        ).generate(countries=("US",))

        build_calls = []
        real_build = generator_module.build_universe

        def counting_build(*args, **kwargs):
            build_calls.append(args)
            return real_build(*args, **kwargs)

        monkeypatch.setattr(generator_module, "build_universe", counting_build)
        warm_engine = GenerationEngine(
            generator.config, cache=cache, executor=_ExplodingExecutor()
        )
        warm = warm_engine.generate(countries=("US",))
        assert build_calls == [], "warm cache must not construct a universe"
        assert len(warm) == 4

    def test_partial_hits_only_generate_misses(self, generator, tmp_path):
        cache = SliceCache(tmp_path / "slices")
        engine = GenerationEngine(generator.config, cache=cache, generator=generator)
        engine.generate(countries=("US",))
        before = cache.stats.writes
        engine.generate(countries=("US", "KR"))
        # Only KR's four slices were generated and written.
        assert cache.stats.writes == before + 4

    def test_engine_accepts_cache_path(self, generator, tmp_path):
        engine = GenerationEngine(
            generator.config, cache=tmp_path / "slices", generator=generator
        )
        assert isinstance(engine.cache, SliceCache)


class TestLazyDataset:
    @pytest.fixture()
    def lazy(self, generator, tmp_path):
        engine = GenerationEngine(
            generator.config, cache=tmp_path / "slices", generator=generator
        )
        return engine.generate_lazy(countries=COUNTRIES)

    def test_starts_fully_pending(self, lazy):
        assert isinstance(lazy, LazyBrowsingDataset)
        assert lazy.pending == len(lazy) == len(COUNTRIES) * 4
        assert len(lazy.countries) == len(COUNTRIES)

    def test_getitem_materialises_one_slice(self, lazy, generator):
        breakdown = Breakdown(
            "US", Platform.WINDOWS, Metric.PAGE_LOADS, REFERENCE_MONTH
        )
        ranked = lazy[breakdown]
        assert lazy.pending == len(lazy) - 1
        assert _blob(ranked) == _blob(
            generator.rank_list("US", Platform.WINDOWS, Metric.PAGE_LOADS)
        )

    def test_select_materialises_only_needed_slices(self, lazy):
        per_country = lazy.select(
            Platform.ANDROID, Metric.TIME_ON_PAGE, REFERENCE_MONTH
        )
        assert set(per_country) == set(COUNTRIES)
        assert lazy.pending == len(lazy) - len(COUNTRIES)

    def test_get_or_none_absent_breakdown(self, lazy):
        assert lazy.get_or_none(
            "US", Platform.IOS, Metric.PAGE_LOADS, REFERENCE_MONTH
        ) is None
        assert lazy.pending == len(lazy)

    def test_equals_eager_dataset_when_materialised(self, lazy, generator):
        eager = generator.generate(countries=COUNTRIES)
        lazy.materialize()
        assert lazy.pending == 0
        for breakdown in eager.breakdowns():
            assert _blob(lazy[breakdown]) == _blob(eager[breakdown])

    def test_filter_and_map_lists_materialise(self, lazy):
        filtered = lazy.filter(lambda b: b.country == "US")
        assert {b.country for b in filtered.breakdowns()} == {"US"}
        truncated = lazy.map_lists(lambda b, rl: rl.top(5))
        assert all(len(truncated[b]) == 5 for b in truncated.breakdowns())
        assert lazy.pending == 0


class TestExecutorRegistry:
    def test_generator_for_memoises_per_fingerprint(self, generator):
        from repro.engine import generator_for

        first = generator_for(generator.config)
        assert generator_for(generator.config) is first
