"""Integration: reproducibility guarantees across the whole stack."""

from repro.core import Breakdown, Metric, Month, Platform, REFERENCE_MONTH
from repro.engine import GenerationEngine, ParallelExecutor
from repro.synth import GeneratorConfig, TelemetryGenerator


class TestDatasetDeterminism:
    def test_full_dataset_reproducible(self):
        cfg = GeneratorConfig.small(seed=77)
        a = TelemetryGenerator(cfg).generate(
            countries=("US", "KR", "BR"),
            months=(Month(2021, 12), REFERENCE_MONTH),
        )
        b = TelemetryGenerator(cfg).generate(
            countries=("US", "KR", "BR"),
            months=(Month(2021, 12), REFERENCE_MONTH),
        )
        assert set(a.breakdowns()) == set(b.breakdowns())
        for breakdown in a.breakdowns():
            assert a[breakdown] == b[breakdown], breakdown

    def test_subset_generation_matches_superset(self):
        cfg = GeneratorConfig.small(seed=78)
        full = TelemetryGenerator(cfg).generate(countries=("US", "KR", "BR"))
        partial = TelemetryGenerator(cfg).generate(countries=("KR",))
        for breakdown in partial.breakdowns():
            assert partial[breakdown] == full[breakdown]

    def test_emit_mode_does_not_change_ranking(self):
        canonical = TelemetryGenerator(GeneratorConfig.small(seed=79))
        domains = TelemetryGenerator(
            GeneratorConfig.small(seed=79, emit="domains")
        )
        a = canonical.rank_list("JP", Platform.WINDOWS, Metric.TIME_ON_PAGE)
        b = domains.rank_list("JP", Platform.WINDOWS, Metric.TIME_ON_PAGE)
        # Same underlying ranking: same length, same positions for
        # single-domain sites.
        assert len(a) == len(b)
        assert sum(1 for x, y in zip(a.sites, b.sites) if x == y) > 0.9 * len(a)

    def test_slice_byte_identical_across_generation_paths(self, generator):
        """The engine refactor's core invariant: a single ``rank_list``
        slice, the same slice from a full ``generate()`` grid, and the
        same slice from a ``ParallelExecutor`` run are byte-identical."""
        config = generator.config
        breakdown = Breakdown(
            "KR", Platform.ANDROID, Metric.TIME_ON_PAGE, REFERENCE_MONTH
        )
        direct = generator.rank_list(
            breakdown.country, breakdown.platform, breakdown.metric,
            breakdown.month,
        )
        full = generator.generate(countries=("KR", "US"))[breakdown]
        parallel = GenerationEngine(
            config, executor=ParallelExecutor(jobs=2)
        ).generate(countries=("KR", "US"))[breakdown]

        def blob(ranked):
            return ("\n".join(ranked.sites) + "\n").encode("utf-8")

        assert blob(direct) == blob(full) == blob(parallel)

    def test_distribution_curves_identical_across_instances(self):
        a = TelemetryGenerator(GeneratorConfig.small(seed=80))
        b = TelemetryGenerator(GeneratorConfig.small(seed=80))
        for platform in Platform.studied():
            for metric in Metric.studied():
                assert (
                    a.distribution(platform, metric).anchors
                    == b.distribution(platform, metric).anchors
                )
