"""Integration: raw-domain emission + eTLD merging ≡ canonical emission.

The generator can emit either canonical site identities directly or the
raw per-country domains (google.co.uk, shopee.com.vn, ...).  Running the
Section 3.1 merge pipeline over the raw domains must reproduce the
canonical lists exactly — the property that proves the eTLD subsystem
implements the aggregation step correctly.
"""

import pytest

from repro.core import Metric, Platform, REFERENCE_MONTH
from repro.etld.merge import DomainMerger
from repro.synth import GeneratorConfig, TelemetryGenerator

# The corpus must include at least two markets of every multinational
# present, otherwise the merge rule ("a secondary version exists under
# another eTLD") cannot fire — e.g. mercadolibre needs BR plus a
# Spanish-American market, lazada needs two southeast-Asian ones.
COUNTRIES = ("US", "GB", "BR", "KR", "VN", "TW", "MX", "TH")


@pytest.fixture(scope="module")
def canonical_gen():
    return TelemetryGenerator(GeneratorConfig.small())


@pytest.fixture(scope="module")
def domain_gen():
    return TelemetryGenerator(GeneratorConfig.small(emit="domains"))


@pytest.fixture(scope="module")
def merger(domain_gen):
    corpus: set[str] = set()
    for country in COUNTRIES:
        ranked = domain_gen.rank_list(country, Platform.WINDOWS, Metric.PAGE_LOADS)
        corpus.update(ranked.sites)
    return DomainMerger(corpus)


class TestEquivalence:
    @pytest.mark.parametrize("country", COUNTRIES)
    def test_merged_domains_match_canonical(self, canonical_gen, domain_gen,
                                            merger, country):
        canonical = canonical_gen.rank_list(
            country, Platform.WINDOWS, Metric.PAGE_LOADS
        )
        raw = domain_gen.rank_list(country, Platform.WINDOWS, Metric.PAGE_LOADS)
        merged = raw.rename(merger.mapping_for(raw.sites))
        assert merged.sites == canonical.sites

    def test_multinationals_actually_vary_by_country(self, domain_gen):
        us = domain_gen.rank_list("US", Platform.WINDOWS, Metric.PAGE_LOADS)
        gb = domain_gen.rank_list("GB", Platform.WINDOWS, Metric.PAGE_LOADS)
        assert "google.com" in us.top(3)
        assert "google.co.uk" in gb.top(3)

    def test_merger_collapses_the_multinationals(self, merger):
        assert merger.canonical("google.com") == "google"
        assert merger.canonical("google.co.uk") == "google"
        # Single-market site identities are untouched.
        assert merger.canonical("naver.com") == "naver.com"

    def test_cross_country_comparison_only_works_after_merge(
        self, domain_gen, merger
    ):
        us = domain_gen.rank_list("US", Platform.WINDOWS, Metric.PAGE_LOADS)
        gb = domain_gen.rank_list("GB", Platform.WINDOWS, Metric.PAGE_LOADS)
        raw_overlap = us.top(10).percent_intersection(gb.top(10))
        merged_us = us.rename(merger.mapping_for(us.sites))
        merged_gb = gb.rename(merger.mapping_for(gb.sites))
        merged_overlap = merged_us.top(10).percent_intersection(merged_gb.top(10))
        # Without merging, the shared multinationals look like different
        # sites — exactly the noise Section 3.1 warns about.
        assert merged_overlap > raw_overlap
