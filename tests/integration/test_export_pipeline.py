"""Integration: private dataset → public CrUX-style view → analysis.

Section 3.1 notes researchers without the private data can use the
public CrUX buckets.  This test checks that the public view supports a
coarse version of the concentration/use-case analysis and degrades the
fine-grained ones in the expected way (rank order lost within buckets).
"""

import pytest

from repro.core import Metric, Platform, REFERENCE_MONTH
from repro.export.crux import export_crux

COUNTRIES = ("US", "KR", "BR", "FR", "JP", "NG")


@pytest.fixture(scope="module")
def export(reference_dataset):
    return export_crux(
        reference_dataset, Platform.WINDOWS, REFERENCE_MONTH, countries=COUNTRIES
    )


class TestPublicViewProperties:
    def test_bucket_membership_consistent_with_private_ranks(
        self, export, reference_dataset
    ):
        for country in COUNTRIES:
            private = reference_dataset.get(
                country, Platform.WINDOWS, Metric.PAGE_LOADS, REFERENCE_MONTH
            )
            public = export.per_country[country]
            for rank, site in enumerate(private.top(1_200).sites, start=1):
                assert public[site] >= rank

    def test_top_bucket_recovers_head_sites(self, export, reference_dataset):
        for country in COUNTRIES:
            private = reference_dataset.get(
                country, Platform.WINDOWS, Metric.PAGE_LOADS, REFERENCE_MONTH
            )
            head_bucket = export.sites_in_bucket(1_000, country=country)
            assert set(private.top(1_000).sites) == head_bucket

    def test_rank_order_is_lost_within_buckets(self, export):
        # The public data cannot distinguish rank 1 from rank 999.
        us = export.per_country["US"]
        assert us["google"] == 1_000
        values_at_head = {b for s, b in us.items() if b == 1_000}
        assert values_at_head == {1_000}

    def test_global_view_headed_by_global_anchors(self, export):
        head = export.sites_in_bucket(1_000)
        for anchor in ("google", "facebook.com", "youtube.com"):
            assert anchor in head

    def test_cross_country_use_case_analysis_survives_coarsening(
        self, export, labels
    ):
        # Every country's top bucket still contains a search engine and
        # a video platform — the Section 4.2.1 finding is recoverable
        # from public data.
        for country in COUNTRIES:
            head = export.sites_in_bucket(1_000, country=country)
            categories = {labels.get(site, "Unknown") for site in head}
            assert "Search Engines" in categories
            assert "Video Streaming" in categories
