"""Integration: the full paper pipeline on one small world.

generate telemetry → label with the (imperfect) categorisation API →
run the accuracy validation → clean the labels → run the analyses on
the cleaned labels, and check the headline findings still hold.  This
is the closest analogue to what the authors actually did.
"""

import pytest

from repro.analysis.composition import composition_panel, dominant_category
from repro.analysis.platforms import platform_differences
from repro.categories.api import APIConfig, DomainIntelligenceAPI
from repro.categories.validation import clean_labels, validate_categories
from repro.core import Metric, Platform, REFERENCE_MONTH


@pytest.fixture(scope="module")
def api(generator, labels):
    return DomainIntelligenceAPI(labels, APIConfig(seed=23))


@pytest.fixture(scope="module")
def cleaned_labels(generator, labels, api, reference_dataset):
    # Label every site appearing in any reference list (the paper
    # labelled every top-10K site).
    sites: set[str] = set()
    for breakdown in reference_dataset.breakdowns():
        sites.update(reference_dataset[breakdown].sites)
    api_labels = api.bulk_lookup(sorted(sites))
    report = validate_categories(api, api_labels, seed=29)
    curated = {
        site: category
        for site, category in labels.items()
        if category in ("Search Engines", "Social Networks") and site in sites
    }
    return clean_labels(api_labels, report, curated_truth=curated)


class TestCleanedLabelQuality:
    def test_majority_of_labels_correct(self, cleaned_labels, labels):
        scored = [
            (site, label) for site, label in cleaned_labels.items()
            if label != "Unknown"
        ]
        correct = sum(1 for site, label in scored if labels.get(site) == label)
        assert correct / len(scored) > 0.8

    def test_curated_search_set_is_exact(self, cleaned_labels, labels):
        claimed = {s for s, l in cleaned_labels.items() if l == "Search Engines"}
        truth = {
            s for s, l in labels.items()
            if l == "Search Engines" and s in cleaned_labels
        }
        assert claimed == truth


class TestFindingsSurviveNoisyLabels:
    """The paper's headline results must be recoverable from the
    *cleaned API labels*, not just from ground truth."""

    def test_search_still_dominates_loads(self, reference_dataset, cleaned_labels):
        panel = composition_panel(
            reference_dataset, cleaned_labels, Platform.WINDOWS,
            Metric.PAGE_LOADS, REFERENCE_MONTH, top_n=1_500,
            perspective="traffic",
        )
        assert dominant_category(panel) == "Search Engines"

    def test_video_still_dominates_time(self, reference_dataset, cleaned_labels):
        panel = composition_panel(
            reference_dataset, cleaned_labels, Platform.WINDOWS,
            Metric.TIME_ON_PAGE, REFERENCE_MONTH, top_n=1_500,
            perspective="traffic",
        )
        assert dominant_category(panel) == "Video Streaming"

    def test_platform_skews_survive(self, reference_dataset, cleaned_labels):
        differences = platform_differences(
            reference_dataset, cleaned_labels, Metric.PAGE_LOADS,
            REFERENCE_MONTH, top_n=1_500, min_significant=10,
        )
        by_cat = {d.category: d for d in differences}
        assert by_cat["Pornography"].mobile_leaning
        if "Business" in by_cat:
            assert not by_cat["Business"].mobile_leaning
