"""Tests for the Appendix B validation workflow."""

import pytest

from repro.categories.api import APIConfig, DomainIntelligenceAPI
from repro.categories.validation import (
    CategoryAccuracy,
    clean_labels,
    review_label,
    validate_categories,
)


def _world():
    """A truth mapping with web-realistic base rates.

    The key property: true search engines and social networks are rare
    (a dozen each), while the categories that confuse *into* them
    (Technology, Forums, Entertainment, Lifestyle) are plentiful — the
    base-rate effect that ruins the API's precision on the two curated
    categories.
    """
    sizes = {
        "Technology": 600,
        "Business": 500,
        "Pornography": 250,
        "Entertainment": 220,
        "Lifestyle": 220,
        "Forums": 150,
        "Video Streaming": 90,
        "News & Media": 150,
        "Webmail": 40,
        "Search Engines": 12,
        "Social Networks": 15,
    }
    truth = {}
    for category, n in sizes.items():
        slug = category.lower().replace(" ", "").replace("&", "")
        for i in range(n):
            truth[f"{slug}{i}.com"] = category
    return truth


@pytest.fixture(scope="module")
def api():
    return DomainIntelligenceAPI(_world(), APIConfig(seed=11))


@pytest.fixture(scope="module")
def api_labels(api):
    return api.bulk_lookup(sorted(_world()))


class TestReviewLabel:
    def test_exact_match_is_yes(self, api):
        verdict = review_label(api, "business0.com", "Business")
        assert verdict.verdict == "yes"

    def test_same_supercategory_is_maybe(self, api):
        # Video Streaming and Movies & Home Video share Entertainment.
        verdict = review_label(api, "videostreaming0.com", "Movies & Home Video")
        assert verdict.verdict == "maybe"

    def test_cross_supercategory_is_no(self, api):
        verdict = review_label(api, "business0.com", "Pornography")
        assert verdict.verdict == "no"

    def test_junk_label_is_no(self, api):
        verdict = review_label(api, "business0.com", "Parked Domains")
        assert verdict.verdict == "no"


class TestCategoryAccuracy:
    def test_pass_rule(self):
        assert CategoryAccuracy("X", yes=8, maybe=0, no=2).passes()
        assert CategoryAccuracy("X", yes=1, maybe=7, no=2).passes()
        assert not CategoryAccuracy("X", yes=7, maybe=0, no=3).passes()
        # Not a single definite yes -> dropped even if plausible.
        assert not CategoryAccuracy("X", yes=0, maybe=10, no=0).passes()

    def test_fraction(self):
        acc = CategoryAccuracy("X", yes=5, maybe=3, no=2)
        assert acc.plausible_fraction == pytest.approx(0.8)
        assert acc.sampled == 10


class TestValidateCategories:
    def test_curated_categories_fail_the_bar(self, api, api_labels):
        report = validate_categories(api, api_labels, seed=5)
        assert "Search Engines" in report.dropped
        assert "Social Networks" in report.dropped

    def test_high_precision_categories_kept(self, api, api_labels):
        report = validate_categories(api, api_labels, seed=5)
        for category in ("Business", "Pornography", "Technology"):
            assert category in report.kept, category

    def test_junk_raw_categories_always_fail(self, api, api_labels):
        report = validate_categories(api, api_labels, seed=5)
        for acc in report.accuracies:
            if acc.category in ("Parked Domains", "Content Servers", "Malware",
                                "Spam", "Login Screens"):
                assert not acc.passes(), acc.category

    def test_unknown_is_not_reviewed(self, api, api_labels):
        report = validate_categories(api, api_labels, seed=5)
        assert all(a.category != "Unknown" for a in report.accuracies)

    def test_report_is_deterministic(self, api, api_labels):
        a = validate_categories(api, api_labels, seed=5)
        b = validate_categories(api, api_labels, seed=5)
        assert a.dropped == b.dropped

    def test_accuracy_of_lookup(self, api, api_labels):
        report = validate_categories(api, api_labels, seed=5)
        assert report.accuracy_of("Business").sampled == 10
        with pytest.raises(KeyError):
            report.accuracy_of("Unknown")

    def test_per_category_validation(self, api, api_labels):
        with pytest.raises(ValueError):
            validate_categories(api, api_labels, per_category=0)


class TestCleanLabels:
    def test_dropped_fold_to_unknown(self, api, api_labels):
        report = validate_categories(api, api_labels, seed=5)
        cleaned = clean_labels(api_labels, report)
        assert not set(cleaned.values()) & set(report.dropped)

    def test_all_labels_in_final_taxonomy(self, api, api_labels):
        from repro.categories.taxonomy import FINAL_TAXONOMY
        report = validate_categories(api, api_labels, seed=5)
        cleaned = clean_labels(api_labels, report)
        for label in cleaned.values():
            assert label in FINAL_TAXONOMY

    def test_curated_override_installs_verified_sets(self, api, api_labels):
        report = validate_categories(api, api_labels, seed=5)
        curated = {f"searchengines{i}.com": "Search Engines" for i in range(12)}
        curated.update({f"socialnetworks{i}.com": "Social Networks" for i in range(15)})
        cleaned = clean_labels(api_labels, report, curated_truth=curated)
        for domain, label in curated.items():
            assert cleaned[domain] == label
        # No other site may claim the curated labels.
        impostors = [
            d for d, label in cleaned.items()
            if label in ("Search Engines", "Social Networks") and d not in curated
        ]
        assert not impostors
