"""Tests for the Taxonomy wrapper."""

import pytest

from repro.categories.taxonomy import FINAL_TAXONOMY, TABLE3, Taxonomy, category_counts
from repro.core.errors import TaxonomyError
from repro.world.categories_data import CategorySpec


class TestStructure:
    def test_table3_counts(self):
        assert len(TABLE3) == 61
        assert len(TABLE3.supercategories) == 22

    def test_final_adds_curated(self):
        assert len(FINAL_TAXONOMY) == 63
        assert FINAL_TAXONOMY.curated == ("Search Engines", "Social Networks")

    def test_membership(self):
        assert "Pornography" in FINAL_TAXONOMY
        assert "Search Engines" in FINAL_TAXONOMY
        assert "Search Engines" not in TABLE3
        assert "Content Servers" not in FINAL_TAXONOMY

    def test_supercategory_of(self):
        assert FINAL_TAXONOMY.supercategory_of("Video Streaming") == "Entertainment"
        assert FINAL_TAXONOMY.supercategory_of("Webmail") == "Internet Communication"
        with pytest.raises(TaxonomyError):
            FINAL_TAXONOMY.supercategory_of("Nope")

    def test_in_supercategory(self):
        education = FINAL_TAXONOMY.in_supercategory("Education")
        assert set(education) == {"Educational Institutions", "Education", "Science"}
        with pytest.raises(TaxonomyError):
            FINAL_TAXONOMY.in_supercategory("Nope")

    def test_is_curated(self):
        assert FINAL_TAXONOMY.is_curated("Search Engines")
        assert not FINAL_TAXONOMY.is_curated("Business")

    def test_duplicate_names_rejected(self):
        spec = CategorySpec("X", "S")
        with pytest.raises(TaxonomyError):
            Taxonomy((spec, spec))


class TestNormalisation:
    def test_merge_table_applied(self):
        assert FINAL_TAXONOMY.normalize("Chat") == "Chat & Messaging"
        assert FINAL_TAXONOMY.normalize("Instant Messengers") == "Chat & Messaging"
        assert FINAL_TAXONOMY.normalize("Online Games") == "Gaming"

    def test_unknown_labels_fold_to_unknown(self):
        assert FINAL_TAXONOMY.normalize("Content Servers") == "Unknown"
        assert FINAL_TAXONOMY.normalize("Whatever") == "Unknown"

    def test_final_labels_pass_through(self):
        assert FINAL_TAXONOMY.normalize("Business") == "Business"

    def test_rollup(self):
        rolled = FINAL_TAXONOMY.rollup({"Video Streaming": 0.2, "Gaming": 0.1,
                                        "Business": 0.3})
        assert rolled["Entertainment"] == pytest.approx(0.3)
        assert rolled["Business & Economy"] == pytest.approx(0.3)


class TestCategoryCounts:
    def test_counts_with_default_unknown(self):
        counts = category_counts(
            ["a", "b", "c"], {"a": "Business", "b": "Business"},
        )
        assert counts == {"Business": 2, "Unknown": 1}

    def test_labels_outside_taxonomy_fold(self):
        counts = category_counts(["a"], {"a": "Parked Domains"})
        assert counts == {"Unknown": 1}
