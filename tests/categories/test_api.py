"""Tests for the simulated Domain Intelligence API."""

import pytest

from repro.categories.api import APIConfig, DomainIntelligenceAPI
from repro.core.errors import TaxonomyError
from repro.world.categories_data import DROPPED_RAW_CATEGORIES

TRUTH = {
    f"site{i}.com": category
    for i, category in enumerate(
        ["Business"] * 400 + ["Pornography"] * 200 + ["Search Engines"] * 200
    )
}


@pytest.fixture(scope="module")
def api() -> DomainIntelligenceAPI:
    return DomainIntelligenceAPI(TRUTH, APIConfig(seed=3))


class TestLookup:
    def test_deterministic(self, api):
        for domain in list(TRUTH)[:50]:
            assert api.lookup(domain) == api.lookup(domain)

    def test_unknown_domain_is_unknown(self, api):
        assert api.lookup("never-seen.example") == "Unknown"

    def test_accuracy_close_to_configured(self, api):
        domains = [d for d, c in TRUTH.items() if c == "Business"]
        correct = sum(1 for d in domains if api.lookup(d) == "Business")
        observed = correct / len(domains)
        # default 0.93 accuracy minus the 5 % junk-label rate ≈ 0.88.
        assert 0.80 <= observed <= 0.95

    def test_low_accuracy_category_errs_often(self, api):
        domains = [d for d, c in TRUTH.items() if c == "Search Engines"]
        correct = sum(1 for d in domains if api.lookup(d) == "Search Engines")
        assert correct / len(domains) < 0.8

    def test_junk_labels_appear_at_configured_rate(self, api):
        junk = set(DROPPED_RAW_CATEGORIES)
        hits = sum(1 for d in TRUTH if api.lookup(d) in junk)
        rate = hits / len(TRUTH)
        assert 0.02 <= rate <= 0.09

    def test_errors_prefer_confusable_categories(self, api):
        domains = [d for d, c in TRUTH.items() if c == "Pornography"]
        wrong = [api.lookup(d) for d in domains]
        wrong = [w for w in wrong if w != "Pornography" and w not in DROPPED_RAW_CATEGORIES]
        if wrong:
            adjacent = sum(1 for w in wrong if w in ("Adult Themes", "Sexuality"))
            assert adjacent / len(wrong) > 0.4

    def test_bulk_lookup(self, api):
        domains = list(TRUTH)[:10]
        bulk = api.bulk_lookup(domains)
        assert set(bulk) == set(domains)
        for d in domains:
            assert bulk[d] == api.lookup(d)

    def test_ground_truth_oracle(self, api):
        assert api.ground_truth("site0.com") == "Business"
        assert api.ground_truth("missing.com") is None


class TestConfig:
    def test_validation(self):
        with pytest.raises(TaxonomyError):
            APIConfig(default_accuracy=1.5)
        with pytest.raises(TaxonomyError):
            APIConfig(junk_label_rate=1.0)
        with pytest.raises(TaxonomyError):
            APIConfig(category_accuracy={"Business": -0.1})

    def test_accuracy_for_override(self):
        config = APIConfig(category_accuracy={"Business": 0.5})
        assert config.accuracy_for("Business") == 0.5
        assert config.accuracy_for("Travel") == config.default_accuracy

    def test_perfect_api(self):
        api = DomainIntelligenceAPI(
            TRUTH,
            APIConfig(default_accuracy=1.0, junk_label_rate=0.0,
                      category_accuracy={}),
        )
        for domain, category in list(TRUTH.items())[:100]:
            assert api.lookup(domain) == category
