"""Tests for traffic-curve construction."""

import pytest

from repro.core import Metric, Platform
from repro.synth.traffic import (
    country_distribution,
    country_top1_share,
    global_distribution,
    global_distributions,
)
from repro.world.countries import COUNTRY_CODES
from repro.world.profiles import PER_COUNTRY_TOP1_RANGE


class TestGlobalCurves:
    def test_four_curves(self):
        assert len(global_distributions()) == 4

    def test_windows_loads_matches_paper(self):
        dist = global_distribution(Platform.WINDOWS, Metric.PAGE_LOADS)
        assert dist.cumulative_share(1) == pytest.approx(0.17)
        assert dist.cumulative_share(6) == pytest.approx(0.25)
        assert dist.cumulative_share(10_000) == pytest.approx(0.70)

    def test_windows_time_matches_paper(self):
        dist = global_distribution(Platform.WINDOWS, Metric.TIME_ON_PAGE)
        assert dist.cumulative_share(1) == pytest.approx(0.24)
        assert dist.sites_for_share(0.5) == 7

    def test_unstudied_combination_raises(self):
        with pytest.raises(KeyError):
            global_distribution(Platform.MAC_OS, Metric.PAGE_LOADS)


class TestCountryCurves:
    def test_top1_share_in_paper_band(self):
        lo, hi = PER_COUNTRY_TOP1_RANGE
        for country in COUNTRY_CODES:
            share = country_top1_share(country)
            assert lo <= share <= hi

    def test_top1_share_deterministic(self):
        assert country_top1_share("BR") == country_top1_share("BR")
        assert country_top1_share("BR", seed=1) != country_top1_share("BR", seed=2)

    def test_median_near_twenty_percent(self):
        shares = sorted(country_top1_share(c) for c in COUNTRY_CODES)
        median = shares[len(shares) // 2]
        assert 0.15 <= median <= 0.25

    def test_country_curve_head_matches_top1(self):
        for country in ("US", "KR", "NG"):
            dist = country_distribution(country, Platform.WINDOWS, Metric.PAGE_LOADS)
            assert dist.cumulative_share(1) == pytest.approx(
                country_top1_share(country), abs=1e-6
            )

    def test_country_curve_tail_stays_near_global(self):
        base = global_distribution(Platform.WINDOWS, Metric.PAGE_LOADS)
        for country in ("US", "JP"):
            dist = country_distribution(country, Platform.WINDOWS, Metric.PAGE_LOADS)
            assert dist.cumulative_share(1_000_000) == pytest.approx(
                base.cumulative_share(1_000_000), abs=0.02
            )

    def test_country_curves_monotone(self):
        for country in COUNTRY_CODES[:10]:
            dist = country_distribution(country, Platform.ANDROID, Metric.PAGE_LOADS)
            previous = 0.0
            for rank in (1, 10, 100, 10_000, 1_000_000):
                share = dist.cumulative_share(rank)
                assert share >= previous
                previous = share

    def test_unknown_country_rejected(self):
        with pytest.raises(KeyError):
            country_top1_share("XX")
