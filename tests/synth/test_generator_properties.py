"""Property-based tests of generator invariants, across seeds.

Uses a micro universe (builds in well under a second) so hypothesis can
afford several seeds per property.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Metric, Month, Platform
from repro.synth import GeneratorConfig, TelemetryGenerator
from repro.synth.privacy import PrivacyConfig
from repro.synth.universe import UniverseConfig


def _micro_config(seed: int) -> GeneratorConfig:
    return GeneratorConfig(
        seed=seed,
        universe=UniverseConfig(
            seed=seed, global_pool=40, regional_pool=12, language_pool=8,
            endemic_pool=150, neighbor_pool=100, strong_pool=10,
        ),
        list_size=100,
        privacy=PrivacyConfig(client_threshold=0),
    )


seeds = st.integers(min_value=1, max_value=10_000)
countries = st.sampled_from(["US", "KR", "BR", "JP", "NG", "FR", "IN"])
platforms = st.sampled_from(list(Platform.studied()))
metrics = st.sampled_from(list(Metric.studied()))
months = st.builds(Month, st.just(2021), st.integers(min_value=9, max_value=12))


class TestInvariants:
    @given(seeds, countries, platforms, metrics, months)
    @settings(max_examples=25, deadline=None)
    def test_lists_are_valid_and_full(self, seed, country, platform, metric, month):
        gen = TelemetryGenerator(_micro_config(seed))
        ranked = gen.rank_list(country, platform, metric, month)
        assert len(ranked) == 100
        assert len(set(ranked.sites)) == 100
        assert all(ranked.sites)

    @given(seeds, countries, platforms, metrics)
    @settings(max_examples=15, deadline=None)
    def test_regeneration_is_identical(self, seed, country, platform, metric):
        a = TelemetryGenerator(_micro_config(seed))
        b = TelemetryGenerator(_micro_config(seed))
        assert a.rank_list(country, platform, metric) == \
            b.rank_list(country, platform, metric)

    @given(seeds, countries)
    @settings(max_examples=15, deadline=None)
    def test_google_always_present_at_head(self, seed, country):
        gen = TelemetryGenerator(_micro_config(seed))
        ranked = gen.rank_list(country, Platform.WINDOWS, Metric.PAGE_LOADS)
        google = gen.universe.canonical_of("google")
        rank = ranked.rank_of(google)
        assert rank is not None and rank <= 3

    @given(seeds, countries, platforms)
    @settings(max_examples=15, deadline=None)
    def test_metric_lists_share_most_of_the_head(self, seed, country, platform):
        gen = TelemetryGenerator(_micro_config(seed))
        loads = gen.rank_list(country, platform, Metric.PAGE_LOADS)
        time = gen.rank_list(country, platform, Metric.TIME_ON_PAGE)
        # The top-10 by loads and by time always overlap substantially —
        # the mega anchors appear in both however the noise falls.
        assert loads.top(10).percent_intersection(time.top(10)) >= 0.3

    @given(seeds, countries)
    @settings(max_examples=10, deadline=None)
    def test_endemic_sites_stay_home(self, seed, country):
        gen = TelemetryGenerator(_micro_config(seed))
        uni = gen.universe
        ranked = gen.rank_list(country, Platform.WINDOWS, Metric.PAGE_LOADS)
        canonical_to_uid = {
            uni.canonical[int(u)]: int(u) for u in uni.candidates(country)
        }
        for site in ranked.sites:
            uid = canonical_to_uid[site]
            home = uni.home[uid]
            if uni.archetype[uid] == 2:  # endemic
                assert home == country

    @given(seeds)
    @settings(max_examples=8, deadline=None)
    def test_adjacent_months_more_similar_than_distant(self, seed):
        gen = TelemetryGenerator(_micro_config(seed))
        sep = gen.rank_list("US", Platform.WINDOWS, Metric.PAGE_LOADS, Month(2021, 9))
        oct_ = gen.rank_list("US", Platform.WINDOWS, Metric.PAGE_LOADS, Month(2021, 10))
        feb = gen.rank_list("US", Platform.WINDOWS, Metric.PAGE_LOADS, Month(2022, 2))
        assert sep.percent_intersection(oct_) >= sep.percent_intersection(feb) - 0.05


class TestConfigEdgeCases:
    def test_list_size_larger_than_pool_is_clamped(self):
        cfg = GeneratorConfig(
            seed=3,
            universe=UniverseConfig(
                seed=3, global_pool=10, regional_pool=2, language_pool=2,
                endemic_pool=30, neighbor_pool=20, strong_pool=2,
            ),
            list_size=100_000,
            privacy=PrivacyConfig(client_threshold=0),
        )
        gen = TelemetryGenerator(cfg)
        ranked = gen.rank_list("US", Platform.WINDOWS, Metric.PAGE_LOADS)
        assert 0 < len(ranked) < 100_000

    def test_zero_pools_still_serve_named_sites(self):
        cfg = GeneratorConfig(
            seed=4,
            universe=UniverseConfig(
                seed=4, global_pool=0, regional_pool=0, language_pool=0,
                endemic_pool=0, neighbor_pool=0, strong_pool=0,
                nonpublic_fraction=0.0,
            ),
            list_size=50,
            privacy=PrivacyConfig(client_threshold=0),
        )
        gen = TelemetryGenerator(cfg)
        ranked = gen.rank_list("KR", Platform.WINDOWS, Metric.PAGE_LOADS)
        assert gen.universe.canonical_of("naver") == ranked[1]
        assert len(ranked) > 10
