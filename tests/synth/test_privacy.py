"""Tests for the simulated privacy pipeline."""

import pytest

from repro.core import Metric, Platform, RankedList
from repro.synth.privacy import (
    PrivacyConfig,
    apply_threshold,
    threshold_rank,
    time_sampling_noise_sigma,
    unique_clients_at_rank,
)
from repro.synth.traffic import global_distribution

DIST = global_distribution(Platform.WINDOWS, Metric.PAGE_LOADS)


class TestClients:
    def test_clients_decrease_with_rank(self):
        base = 1_000_000
        values = [unique_clients_at_rank(r, base, DIST) for r in (1, 10, 100, 10_000)]
        assert values == sorted(values, reverse=True)

    def test_clients_scale_with_install_base(self):
        small = unique_clients_at_rank(100, 10_000, DIST)
        large = unique_clients_at_rank(100, 1_000_000, DIST)
        assert large > small

    def test_validation(self):
        with pytest.raises(ValueError):
            unique_clients_at_rank(0, 100, DIST)
        with pytest.raises(ValueError):
            unique_clients_at_rank(1, 0, DIST)


class TestThresholdRank:
    def test_larger_install_base_deeper_cutoff(self):
        small = threshold_rank(50_000, DIST, threshold=50, max_rank=100_000)
        large = threshold_rank(5_000_000, DIST, threshold=50, max_rank=100_000)
        assert large > small

    def test_zero_threshold_keeps_everything(self):
        assert threshold_rank(100, DIST, threshold=0, max_rank=1_000) == 1_000

    def test_tiny_country_gets_zero(self):
        assert threshold_rank(10, DIST, threshold=1_000, max_rank=1_000) == 0

    def test_study_country_keeps_full_10k(self):
        # A web_scale=0.3 country (the smallest in the roster) must keep
        # its full top-10K — the paper selected countries to guarantee it.
        cutoff = threshold_rank(0.3 * 5_000_000, DIST, threshold=50, max_rank=10_000)
        assert cutoff == 10_000

    def test_apply_threshold_truncates(self):
        ranked = RankedList([f"s{i}" for i in range(1_000)])
        config = PrivacyConfig(client_threshold=500)
        truncated = apply_threshold(ranked, 20_000, DIST, config)
        assert 0 < len(truncated) < 1_000
        assert truncated.sites == ranked.sites[: len(truncated)]


class TestSamplingNoise:
    def test_noise_shrinks_with_rate(self):
        assert time_sampling_noise_sigma(0.0035) > time_sampling_noise_sigma(0.5)

    def test_full_sampling_near_zero(self):
        assert time_sampling_noise_sigma(1.0) < 0.01

    def test_validation(self):
        with pytest.raises(ValueError):
            time_sampling_noise_sigma(0.0)
        with pytest.raises(ValueError):
            time_sampling_noise_sigma(0.5, typical_events=0)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            PrivacyConfig(client_threshold=-1)
        with pytest.raises(ValueError):
            PrivacyConfig(time_sampling_rate=0.0)
