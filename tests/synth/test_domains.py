"""Tests for domain-string synthesis."""

import numpy as np
import pytest

from repro.etld.psl import DEFAULT_PSL
from repro.synth.domains import (
    COUNTRY_SUFFIX,
    endemic_domain,
    global_domain,
    multinational_domain,
    pseudoword,
    unique_labels,
)
from repro.world.countries import COUNTRY_CODES


@pytest.fixture
def rng():
    return np.random.default_rng(42)


class TestPseudowords:
    def test_pronounceable_structure(self, rng):
        word = pseudoword(rng, syllables=3)
        assert len(word) == 6
        assert word.isalpha() and word.islower()

    def test_syllable_validation(self, rng):
        with pytest.raises(ValueError):
            pseudoword(rng, syllables=0)

    def test_unique_labels_are_unique(self, rng):
        taken: set[str] = set()
        labels = unique_labels(rng, 5_000, taken)
        assert len(labels) == len(set(labels)) == 5_000
        assert taken >= set(labels)

    def test_unique_labels_respect_existing(self, rng):
        taken = {"kapu", "tolo"}
        labels = unique_labels(rng, 500, taken)
        assert "kapu" not in labels and "tolo" not in labels

    def test_negative_count_rejected(self, rng):
        with pytest.raises(ValueError):
            unique_labels(rng, -1, set())


class TestDomains:
    def test_every_study_country_has_a_suffix(self):
        assert set(COUNTRY_SUFFIX) >= set(COUNTRY_CODES)

    def test_global_domain_parses(self, rng):
        for _ in range(50):
            domain = global_domain("kapola", rng)
            match = DEFAULT_PSL.match(domain)
            assert match.label == "kapola"

    def test_endemic_domain_uses_home_suffix_or_com(self, rng):
        suffixes = {endemic_domain("mulato", "BR", rng).split(".", 1)[1]
                    for _ in range(200)}
        assert suffixes == {"com", "com.br"}

    def test_endemic_unknown_country(self, rng):
        with pytest.raises(KeyError):
            endemic_domain("x", "XX", rng)

    def test_multinational_domain_per_country(self):
        assert multinational_domain("google", "GB") == "google.co.uk"
        assert multinational_domain("google", "US") == "google.com"
        assert multinational_domain("shopee", "VN") == "shopee.com.vn"

    def test_multinational_unknown_country_defaults_to_com(self):
        assert multinational_domain("google", "XX") == "google.com"
