"""Tests for universe construction."""

import numpy as np
import pytest

from repro.core.errors import GenerationError
from repro.synth.universe import (
    PROCEDURAL_STRENGTH_CAP,
    Universe,
    UniverseConfig,
    build_universe,
)
from repro.world.countries import COUNTRY_CODES
from repro.world.sites import CHAMPION_RULES, NAMED_SITES, Archetype


@pytest.fixture(scope="module")
def universe() -> Universe:
    return build_universe(UniverseConfig.small(seed=99))


class TestConstruction:
    def test_all_named_sites_present(self, universe):
        assert set(universe.named_uid) == {s.name for s in NAMED_SITES}

    def test_canonical_identities_unique(self, universe):
        assert len(set(universe.canonical)) == universe.n_sites

    def test_champions_created_per_rule(self, universe):
        champion_uids = [u for u, tags in universe.tags.items() if "champion" in tags]
        expected = sum(len(rule.countries) for rule in CHAMPION_RULES)
        assert len(champion_uids) == expected

    def test_every_country_has_candidates(self, universe):
        for code in COUNTRY_CODES:
            candidates = universe.candidates(code)
            assert len(candidates) > 0
            boost = universe.country_boost[code]
            assert len(boost) == len(candidates)

    def test_unknown_country_raises(self, universe):
        with pytest.raises(GenerationError):
            universe.candidates("XX")

    def test_endemic_sites_only_in_home_pool(self, universe):
        pools = {
            code: set(universe.candidates(code).tolist()) for code in COUNTRY_CODES
        }
        endemic_uids = np.flatnonzero(universe.archetype == 2)
        rng = np.random.default_rng(0)
        for uid in rng.choice(endemic_uids, size=200, replace=False):
            home = universe.home[int(uid)]
            assert home is not None
            for code, pool in pools.items():
                if code == home:
                    assert int(uid) in pool
                else:
                    assert int(uid) not in pool

    def test_global_sites_in_every_pool(self, universe):
        global_uids = set(np.flatnonzero(universe.archetype == 0).tolist())
        for code in ("US", "JP", "BR"):
            assert global_uids <= set(universe.candidates(code).tolist())

    def test_procedural_strengths_capped(self, universe):
        curated = set(universe.named_uid.values())
        curated.update(uid for uid, tags in universe.tags.items()
                       if "champion" in tags or "strong" in tags)
        mask = np.ones(universe.n_sites, dtype=bool)
        mask[list(curated)] = False
        assert universe.log_strength[mask].max() <= PROCEDURAL_STRENGTH_CAP + 1e-9

    def test_nonpublic_only_procedural(self, universe):
        n_curated = len(universe.named_uid) + sum(len(r.countries) for r in CHAMPION_RULES)
        assert not universe.non_public[:n_curated].any()
        assert universe.non_public.any()

    def test_noise_scale_decreases_with_strength(self, universe):
        n_curated = len(universe.named_uid) + sum(len(r.countries) for r in CHAMPION_RULES)
        strengths = universe.log_strength[n_curated:]
        noise = universe.noise_scale[n_curated:]
        strong = noise[strengths > 4.0]
        weak = noise[strengths < 0.0]
        if len(strong) and len(weak):
            assert strong.mean() < weak.mean()


class TestIdentities:
    def test_canonical_of_named(self, universe):
        assert universe.canonical_of("google") == "google"
        assert universe.canonical_of("naver") == "naver.com"
        assert universe.canonical_of("bbc") == "bbc.co.uk"

    def test_domain_in_country_for_multinational(self, universe):
        uid = universe.named_uid["google"]
        assert universe.domain_in_country(uid, "GB") == "google.co.uk"
        assert universe.domain_in_country(uid, "US") == "google.com"

    def test_domain_in_country_for_single_domain_site(self, universe):
        uid = universe.named_uid["naver"]
        assert universe.domain_in_country(uid, "KR") == "naver.com"
        assert universe.domain_in_country(uid, "US") == "naver.com"

    def test_category_lookup(self, universe):
        uid = universe.named_uid["netflix"]
        assert universe.category_of(uid) == "Video Streaming"

    def test_category_by_canonical_covers_universe(self, universe):
        mapping = universe.category_by_canonical()
        assert len(mapping) == universe.n_sites
        assert mapping["google"] == "Search Engines"


class TestDeterminismAndCaching:
    def test_same_config_is_cached(self):
        a = build_universe(UniverseConfig.small(seed=99))
        b = build_universe(UniverseConfig.small(seed=99))
        assert a is b

    def test_different_seed_different_universe(self):
        a = build_universe(UniverseConfig.small(seed=99))
        b = build_universe(UniverseConfig.small(seed=100))
        assert a is not b
        # Named sites identical, procedural labels differ.
        assert a.canonical_of("google") == b.canonical_of("google")
        assert a.canonical != b.canonical


class TestConfig:
    def test_validation(self):
        with pytest.raises(GenerationError):
            UniverseConfig(global_pool=-1)
        with pytest.raises(GenerationError):
            UniverseConfig(nonpublic_fraction=1.0)

    def test_small_is_smaller(self):
        small = UniverseConfig.small()
        full = UniverseConfig()
        assert small.endemic_pool < full.endemic_pool
        assert small.global_pool < full.global_pool
