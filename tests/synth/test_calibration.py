"""Tests for the calibration self-check."""

import pytest

from repro.synth import GeneratorConfig, TelemetryGenerator
from repro.synth.calibration import AnchorCheck, calibration_report


class TestAnchorCheck:
    def test_band_logic(self):
        check = AnchorCheck("x", paper=0.5, measured=0.55, lo=0.4, hi=0.6)
        assert check.ok
        assert not AnchorCheck("x", 0.5, 0.75, 0.4, 0.6).ok

    def test_str_mentions_status(self):
        assert "OFF" in str(AnchorCheck("x", 0.5, 0.9, 0.4, 0.6))
        assert "ok" in str(AnchorCheck("x", 0.5, 0.5, 0.4, 0.6))


class TestCalibrationReport:
    @pytest.fixture(scope="class")
    def report(self, generator):
        return calibration_report(generator)

    def test_all_anchors_present(self, report):
        names = {c.name for c in report.checks}
        assert any("google" in n for n in names)
        assert any("naver" in n for n in names)
        assert any("exclusivity" in n for n in names)
        assert len(report.checks) >= 8

    def test_small_universe_holds_the_anchors(self, report):
        # The small test universe must stay within the (loosened) bands;
        # this is the regression alarm for world-model edits.
        assert report.ok, "\n" + str(report)

    def test_failures_listed(self, report):
        assert report.failures() == tuple(
            c for c in report.checks if not c.ok
        )

    def test_report_renders(self, report):
        text = str(report)
        assert text.count("\n") == len(report.checks) - 1
