"""Tests for Zipf–Mandelbrot utilities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.synth.zipf import ZipfMandelbrot, fit_zipf_exponent


class TestZipfMandelbrot:
    def test_shares_normalised(self):
        z = ZipfMandelbrot(s=1.0, n=500)
        assert z.shares().sum() == pytest.approx(1.0, rel=1e-6)

    def test_shares_decreasing(self):
        z = ZipfMandelbrot(s=0.8, q=2.0, n=100)
        shares = z.shares()
        assert np.all(np.diff(shares) < 0)

    def test_cumulative_share_monotone(self):
        z = ZipfMandelbrot(s=1.2, n=10_000)
        values = [z.cumulative_share(r) for r in (1, 10, 100, 1_000, 10_000)]
        assert values == sorted(values)
        assert values[-1] == pytest.approx(1.0, rel=1e-6)

    def test_steeper_exponent_more_concentrated(self):
        shallow = ZipfMandelbrot(s=0.8, n=1_000)
        steep = ZipfMandelbrot(s=1.5, n=1_000)
        assert steep.cumulative_share(10) > shallow.cumulative_share(10)

    def test_large_n_tail_approximation_close(self):
        # Exact (small n within cutoff) vs the Euler–Maclaurin tail path.
        exact = ZipfMandelbrot(s=1.1, n=100_000)
        approx = ZipfMandelbrot(s=1.1, n=1_000_000)
        # The bigger-support version must give smaller head shares.
        assert approx.cumulative_share(100) < exact.cumulative_share(100)
        # And the normaliser should behave smoothly across the cutoff.
        assert approx.cumulative_share(100) == pytest.approx(
            exact.cumulative_share(100), rel=0.25
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            ZipfMandelbrot(s=0)
        with pytest.raises(ValueError):
            ZipfMandelbrot(s=1, q=-1)
        with pytest.raises(ValueError):
            ZipfMandelbrot(s=1, n=0)
        with pytest.raises(ValueError):
            ZipfMandelbrot(s=1).cumulative_share(0)

    @given(st.floats(min_value=0.5, max_value=2.0),
           st.floats(min_value=0.0, max_value=5.0))
    @settings(max_examples=30)
    def test_prefix_sums_bounded(self, s, q):
        z = ZipfMandelbrot(s=s, q=q, n=5_000)
        assert 0.0 < z.cumulative_share(10) <= 1.0


class TestFitExponent:
    def test_recovers_known_exponent(self):
        z = ZipfMandelbrot(s=1.3, n=2_000)
        fitted = fit_zipf_exponent(z.shares(), skip_head=0)
        assert fitted == pytest.approx(1.3, abs=0.05)

    def test_skip_head(self):
        z = ZipfMandelbrot(s=1.0, q=10.0, n=2_000)
        # With a Mandelbrot shift the head is flattened; skipping it
        # brings the fit closer to the asymptotic exponent.
        whole = fit_zipf_exponent(z.shares())
        tail_only = fit_zipf_exponent(z.shares(), skip_head=100)
        assert abs(tail_only - 1.0) < abs(whole - 1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_zipf_exponent(np.array([1.0]))
        with pytest.raises(ValueError):
            fit_zipf_exponent(np.array([0.5, 0.0, 0.1]))
