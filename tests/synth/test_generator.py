"""Tests for the telemetry generator — the heart of the substitution."""

import pytest

from repro.core import Metric, Month, Platform, REFERENCE_MONTH
from repro.core.errors import GenerationError
from repro.synth import GeneratorConfig, TelemetryGenerator
from repro.synth.privacy import PrivacyConfig


class TestConfig:
    def test_validation(self):
        with pytest.raises(GenerationError):
            GeneratorConfig(list_size=0)
        with pytest.raises(GenerationError):
            GeneratorConfig(metric_churn_prob=1.5)
        with pytest.raises(GenerationError):
            GeneratorConfig(metric_churn_lo=2.0, metric_churn_hi=1.0)
        with pytest.raises(GenerationError):
            GeneratorConfig(emit="raw")
        with pytest.raises(GenerationError):
            GeneratorConfig(mobile_metric_factor=0.0)

    def test_small_overrides(self):
        cfg = GeneratorConfig.small(metric_sigma=0.9)
        assert cfg.metric_sigma == 0.9
        assert cfg.list_size == 1_500


class TestFingerprint:
    def test_stable_across_instances(self):
        assert (
            GeneratorConfig.small().fingerprint()
            == GeneratorConfig.small().fingerprint()
        )

    def test_is_short_hex(self):
        fingerprint = GeneratorConfig.small().fingerprint()
        assert len(fingerprint) == 16
        int(fingerprint, 16)  # raises if not hex

    def test_sensitive_to_every_knob_family(self):
        base = GeneratorConfig.small()
        assert base.fingerprint() != GeneratorConfig.small(seed=3).fingerprint()
        assert base.fingerprint() != GeneratorConfig.small(
            list_size=100
        ).fingerprint()
        assert base.fingerprint() != GeneratorConfig.small(
            emit="domains"
        ).fingerprint()
        # Privacy knobs are part of the content address.
        assert base.fingerprint() != GeneratorConfig.small(
            privacy=PrivacyConfig(client_threshold=0)
        ).fingerprint()
        # So is the universe configuration.
        assert base.fingerprint() != GeneratorConfig(seed=2022).fingerprint()

    def test_explicit_universe_equals_resolved_default(self):
        from repro.synth import UniverseConfig

        implicit = GeneratorConfig(seed=5)
        explicit = GeneratorConfig(seed=5, universe=UniverseConfig(seed=5))
        assert implicit.fingerprint() == explicit.fingerprint()


class TestDeterminism:
    def test_same_seed_same_lists(self, generator):
        other = TelemetryGenerator(GeneratorConfig.small())
        for combo in [
            ("US", Platform.WINDOWS, Metric.PAGE_LOADS),
            ("KR", Platform.ANDROID, Metric.TIME_ON_PAGE),
        ]:
            assert generator.rank_list(*combo) == other.rank_list(*combo)

    def test_breakdowns_independent_of_generation_order(self, generator):
        fresh = TelemetryGenerator(GeneratorConfig.small())
        # Generate KR time first on the fresh generator; the US loads
        # list must still match the session generator's.
        fresh.rank_list("KR", Platform.WINDOWS, Metric.TIME_ON_PAGE)
        assert fresh.rank_list("US", Platform.WINDOWS, Metric.PAGE_LOADS) == \
            generator.rank_list("US", Platform.WINDOWS, Metric.PAGE_LOADS)

    def test_different_seed_differs(self):
        a = TelemetryGenerator(GeneratorConfig.small(seed=5))
        b = TelemetryGenerator(GeneratorConfig.small(seed=6))
        la = a.rank_list("US", Platform.WINDOWS, Metric.PAGE_LOADS)
        lb = b.rank_list("US", Platform.WINDOWS, Metric.PAGE_LOADS)
        assert la != lb


class TestListStructure:
    def test_list_size_honoured(self, generator):
        ranked = generator.rank_list("US", Platform.WINDOWS, Metric.PAGE_LOADS)
        assert len(ranked) == generator.config.list_size

    def test_no_duplicates_by_construction(self, generator):
        ranked = generator.rank_list("BR", Platform.ANDROID, Metric.PAGE_LOADS)
        assert len(set(ranked.sites)) == len(ranked)

    def test_unknown_country_rejected(self, generator):
        with pytest.raises(KeyError):
            generator.rank_list("XX", Platform.WINDOWS, Metric.PAGE_LOADS)

    def test_generate_covers_grid(self, generator):
        data = generator.generate(
            countries=("US", "JP"),
            platforms=(Platform.WINDOWS,),
            metrics=(Metric.PAGE_LOADS, Metric.TIME_ON_PAGE),
            months=(REFERENCE_MONTH, Month(2022, 1)),
        )
        assert len(data) == 2 * 1 * 2 * 2


class TestPaperAnchors:
    """Site-level ground truth the generated lists must reproduce."""

    def test_google_number_one_by_loads_except_korea(self, generator):
        google = generator.universe.canonical_of("google")
        naver = generator.universe.canonical_of("naver")
        for country in ("US", "BR", "JP", "FR", "NG", "IN"):
            ranked = generator.rank_list(country, Platform.WINDOWS, Metric.PAGE_LOADS)
            assert ranked[1] == google, country
        kr = generator.rank_list("KR", Platform.WINDOWS, Metric.PAGE_LOADS)
        assert kr[1] == naver

    def test_youtube_tops_time_in_typical_countries(self, generator):
        youtube = generator.universe.canonical_of("youtube")
        hits = 0
        for country in ("BR", "FR", "NG", "IN", "MX", "GB", "DE", "ID"):
            ranked = generator.rank_list(country, Platform.WINDOWS, Metric.TIME_ON_PAGE)
            if ranked[1] == youtube:
                hits += 1
        assert hits >= 6

    def test_google_tops_us_time(self, generator):
        ranked = generator.rank_list("US", Platform.WINDOWS, Metric.TIME_ON_PAGE)
        assert ranked[1] == generator.universe.canonical_of("google")

    def test_adult_sites_rise_on_android(self, generator):
        pornhub = generator.universe.canonical_of("pornhub")
        win = generator.rank_list("US", Platform.WINDOWS, Metric.PAGE_LOADS)
        android = generator.rank_list("US", Platform.ANDROID, Metric.PAGE_LOADS)
        assert android.rank_of(pornhub) < win.rank_of(pornhub)

    def test_censored_countries_suppress_adult_head(self, generator):
        for country in ("KR", "TR", "RU"):
            ranked = generator.rank_list(country, Platform.WINDOWS, Metric.PAGE_LOADS)
            top50 = set(ranked.top(50).sites)
            for name in ("pornhub", "xnxx", "xvideos"):
                assert generator.universe.canonical_of(name) not in top50

    def test_whatsapp_falls_on_mobile_web(self, generator):
        whatsapp = generator.universe.canonical_of("whatsapp")
        win = generator.rank_list("BR", Platform.WINDOWS, Metric.PAGE_LOADS)
        android = generator.rank_list("BR", Platform.ANDROID, Metric.PAGE_LOADS)
        win_rank = win.rank_of(whatsapp)
        android_rank = android.rank_or(whatsapp, len(android) + 1)
        assert win_rank < android_rank

    def test_netflix_absent_from_excluded_markets(self, generator):
        netflix = generator.universe.canonical_of("netflix")
        for country in ("JP", "VN", "RU"):
            ranked = generator.rank_list(country, Platform.WINDOWS, Metric.TIME_ON_PAGE)
            assert netflix not in ranked

    def test_initiated_loads_nearly_identical_to_completed(self, generator):
        completed = generator.rank_list("US", Platform.WINDOWS, Metric.PAGE_LOADS)
        initiated = generator.rank_list("US", Platform.WINDOWS, Metric.INITIATED_PAGE_LOADS)
        # Section 3.1 excludes initiated loads because the two metrics
        # are nearly identical.
        assert completed.percent_intersection(initiated) > 0.97


class TestOverlapCalibration:
    """Noise calibration: overlap statistics must sit near paper values.

    The small universe has a coarser pool, so bands are loose; the full
    calibration is asserted by the benchmarks.
    """

    def test_metric_intersection_mobile_exceeds_desktop(self, generator):
        desk, mob = [], []
        for country in ("US", "BR", "JP", "FR"):
            dl = generator.rank_list(country, Platform.WINDOWS, Metric.PAGE_LOADS)
            dt = generator.rank_list(country, Platform.WINDOWS, Metric.TIME_ON_PAGE)
            al = generator.rank_list(country, Platform.ANDROID, Metric.PAGE_LOADS)
            at = generator.rank_list(country, Platform.ANDROID, Metric.TIME_ON_PAGE)
            desk.append(dl.percent_intersection(dt))
            mob.append(al.percent_intersection(at))
        assert sum(mob) / len(mob) > sum(desk) / len(desk)

    def test_adjacent_months_agree_strongly(self, generator):
        feb = generator.rank_list("US", Platform.WINDOWS, Metric.PAGE_LOADS)
        jan = generator.rank_list("US", Platform.WINDOWS, Metric.PAGE_LOADS, Month(2022, 1))
        assert feb.percent_intersection(jan) > 0.85

    def test_similarity_decays_with_month_distance(self, generator):
        feb = generator.rank_list("FR", Platform.WINDOWS, Metric.PAGE_LOADS)
        jan = generator.rank_list("FR", Platform.WINDOWS, Metric.PAGE_LOADS, Month(2022, 1))
        sep = generator.rank_list("FR", Platform.WINDOWS, Metric.PAGE_LOADS, Month(2021, 9))
        assert feb.percent_intersection(jan) > feb.percent_intersection(sep)

    def test_december_less_similar_than_other_adjacent_pairs(self, generator):
        nov = generator.rank_list("US", Platform.WINDOWS, Metric.PAGE_LOADS, Month(2021, 11))
        dec = generator.rank_list("US", Platform.WINDOWS, Metric.PAGE_LOADS, Month(2021, 12))
        jan = generator.rank_list("US", Platform.WINDOWS, Metric.PAGE_LOADS, Month(2022, 1))
        feb = generator.rank_list("US", Platform.WINDOWS, Metric.PAGE_LOADS, Month(2022, 2))
        dec_pair = dec.percent_intersection(jan)
        jan_pair = jan.percent_intersection(feb)
        nov_pair = nov.percent_intersection(dec)
        assert dec_pair < jan_pair
        assert nov_pair < jan_pair


class TestPrivacyIntegration:
    def test_nonpublic_sites_never_emitted(self, generator):
        uni = generator.universe
        nonpublic = {
            uni.canonical[uid] for uid in range(uni.n_sites) if uni.non_public[uid]
        }
        ranked = generator.rank_list("US", Platform.WINDOWS, Metric.PAGE_LOADS)
        assert not nonpublic & set(ranked.sites)

    def test_disabling_exclusion_reinstates_sites(self):
        cfg = GeneratorConfig.small(
            privacy=PrivacyConfig(exclude_non_public=False, client_threshold=0)
        )
        gen = TelemetryGenerator(cfg)
        uni = gen.universe
        nonpublic = {
            uni.canonical[uid] for uid in range(uni.n_sites) if uni.non_public[uid]
        }
        found = False
        for country in ("US", "BR", "JP", "IN", "FR"):
            ranked = gen.rank_list(country, Platform.WINDOWS, Metric.PAGE_LOADS)
            if nonpublic & set(ranked.sites):
                found = True
                break
        assert found

    def test_harsh_threshold_truncates_lists(self):
        cfg = GeneratorConfig.small(privacy=PrivacyConfig(client_threshold=40_000))
        gen = TelemetryGenerator(cfg)
        ranked = gen.rank_list("NZ", Platform.WINDOWS, Metric.PAGE_LOADS)
        assert len(ranked) < cfg.list_size


class TestDomainEmission:
    def test_domain_mode_emits_cctld_variants(self):
        gen = TelemetryGenerator(GeneratorConfig.small(emit="domains"))
        gb = gen.rank_list("GB", Platform.WINDOWS, Metric.PAGE_LOADS)
        assert "google.co.uk" in gb.top(5)
        us = gen.rank_list("US", Platform.WINDOWS, Metric.PAGE_LOADS)
        assert "google.com" in us.top(5)

    def test_emit_array_matches_per_uid_lookup(self):
        """The vectorized per-country name array is exactly what the old
        per-uid ``domain_in_country`` loop produced, for every uid."""
        gen = TelemetryGenerator(GeneratorConfig.small(emit="domains"))
        uni = gen.universe
        for country in ("GB", "BR"):
            names = gen._emit_names(country)
            assert len(names) == uni.n_sites
            for uid in range(uni.n_sites):
                assert names[uid] == uni.domain_in_country(uid, country)
            # Cached: the second lookup is the same array object.
            assert gen._emit_names(country) is names

    def test_canonical_emit_shares_one_array(self, generator):
        assert generator._emit_names("US") is generator._canonical_names
        assert generator._emit_names("KR") is generator._canonical_names


class TestMonthWalkIncremental:
    """The forward month walk reuses cached unclipped sums; the clipped
    result must stay byte-identical to a full per-month re-sum."""

    @staticmethod
    def _resum(gen, country, month):
        import numpy as np
        from repro.synth.generator import WALK_ORIGIN

        target = month.index()
        origin = WALK_ORIGIN.index()
        candidates = gen.universe.candidates(country)
        walk = np.zeros(len(candidates), dtype=np.float64)
        if target > origin:
            for idx in range(origin + 1, target + 1):
                walk += gen._innovation(country, idx)
        elif target < origin:
            for idx in range(target + 1, origin + 1):
                walk -= gen._innovation(country, idx)
        cap = 2.0 * gen.universe.noise_scale[candidates]
        np.clip(walk, -cap, cap, out=walk)
        return walk

    def test_forward_walks_byte_identical_to_resum(self, generator):
        for month in (Month(2021, 9), Month(2021, 10), Month(2022, 2),
                      Month(2022, 7)):
            got = generator._month_walk("US", month)
            expected = self._resum(generator, "US", month)
            assert got.tobytes() == expected.tobytes(), month

    def test_pre_origin_walk_byte_identical_to_resum(self, generator):
        got = generator._month_walk("US", Month(2021, 6))
        expected = self._resum(generator, "US", Month(2021, 6))
        assert got.tobytes() == expected.tobytes()

    def test_walk_independent_of_request_order(self):
        """Append stability: a month reached incrementally (after earlier
        months primed the cache) matches the same month computed first."""
        jump = TelemetryGenerator(GeneratorConfig.small())
        step = TelemetryGenerator(GeneratorConfig.small())
        late = Month(2022, 2)
        direct = jump._month_walk("FR", late)
        for month in (Month(2021, 10), Month(2021, 11), Month(2021, 12),
                      Month(2022, 1)):
            step._month_walk("FR", month)
        incremental = step._month_walk("FR", late)
        assert direct.tobytes() == incremental.tobytes()
