"""Tests for outlier detection."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.outliers import iqr_outliers, mad_outliers

bulk = st.lists(st.floats(min_value=-10, max_value=10, allow_nan=False),
                min_size=5, max_size=60)


class TestIQR:
    def test_detects_obvious_outlier(self):
        data = [1, 2, 3, 4, 5, 100]
        result = iqr_outliers(data)
        assert result.mask.tolist() == [False] * 5 + [True]

    def test_side_upper_ignores_lower_tail(self):
        data = [-100, 1, 2, 3, 4, 5]
        assert iqr_outliers(data, side="upper").n_outliers == 0
        assert iqr_outliers(data, side="lower").n_outliers == 1

    def test_fences_ordering(self):
        result = iqr_outliers(range(100))
        assert result.lower_fence < result.upper_fence

    def test_validation(self):
        with pytest.raises(ValueError):
            iqr_outliers([])
        with pytest.raises(ValueError):
            iqr_outliers([1.0], k=0)
        with pytest.raises(ValueError):
            iqr_outliers([1.0], side="sideways")

    @given(bulk)
    @settings(max_examples=50)
    def test_mask_consistent_with_fences(self, data):
        result = iqr_outliers(data, k=3.0)
        for value, flagged in zip(data, result.mask):
            outside = value < result.lower_fence or value > result.upper_fence
            assert flagged == outside


class TestMAD:
    def test_detects_global_sites_pattern(self):
        # 98 % of the mass near zero (national), a 2 % far tail (global):
        # the endemicity use case.
        data = np.concatenate([np.random.default_rng(0).normal(0, 1, 490),
                               np.full(10, 60.0)])
        result = mad_outliers(data, side="upper")
        assert result.mask[-10:].all()
        assert result.mask[:490].sum() <= 5

    def test_degenerate_bulk_does_not_crash(self):
        data = [1.0] * 20 + [50.0]
        result = mad_outliers(data, side="upper")
        assert result.mask[-1]

    def test_side_lower(self):
        data = [5.0] * 20 + [-100.0]
        assert mad_outliers(data, side="lower").mask[-1]
        assert not mad_outliers(data, side="upper").mask[-1]

    def test_validation(self):
        with pytest.raises(ValueError):
            mad_outliers([])
        with pytest.raises(ValueError):
            mad_outliers([1.0], threshold=0)

    @given(bulk)
    @settings(max_examples=50)
    def test_fences_bracket_median(self, data):
        result = mad_outliers(data)
        med = float(np.median(data))
        assert result.lower_fence <= med <= result.upper_fence
