"""Kernel ⇔ scalar-reference parity (exact, not approximate).

The vectorized kernels in :mod:`repro.stats.kernels` promise
*bit-identical* results to the scalar reference implementations — that
is what keeps pipeline artifact bytes (and warm artifact caches)
unchanged.  So every parity assertion here is ``==``, never
``pytest.approx``.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import RankedList, SiteVocabulary
from repro.stats.kernels import (
    agreement_sequence_ids,
    bucket_intersections,
    intersection_count_ids,
    pairwise_wrbo,
    rank_matrix,
    rank_pairs_ids,
    weighted_rbo_ids,
)
from repro.stats.rbo import agreement_sequence, weighted_rbo

# Small alphabet + short names force heavy partial overlap between the
# generated lists; ragged lengths come from the independent size draws.
site_names = st.text(alphabet="abcdefghij", min_size=1, max_size=4)
ranked_lists = st.lists(site_names, min_size=0, max_size=40, unique=True)
nonempty_lists = st.lists(site_names, min_size=1, max_size=40, unique=True)
depths = st.one_of(st.none(), st.integers(min_value=1, max_value=50))


def interned(*site_lists):
    vocab = SiteVocabulary()
    return [RankedList(sites).ids(vocab) for sites in site_lists], vocab


class TestAgreementSequenceParity:
    @given(nonempty_lists, nonempty_lists, depths)
    @settings(max_examples=120)
    def test_matches_scalar_reference(self, a, b, depth):
        (ids_a, ids_b), _ = interned(a, b)
        got = agreement_sequence_ids(ids_a, ids_b, depth)
        want = agreement_sequence(a, b, depth)
        assert got.tolist() == list(want)

    def test_empty_lists(self):
        (ids_a, ids_b), _ = interned([], ["a"])
        assert len(agreement_sequence_ids(ids_a, ids_b)) == 0

    def test_bad_depth(self):
        (ids_a, ids_b), _ = interned(["a"], ["a"])
        with pytest.raises(ValueError):
            agreement_sequence_ids(ids_a, ids_b, depth=0)


class TestWeightedRBOParity:
    @given(nonempty_lists, nonempty_lists, depths, st.integers(0, 2**31 - 1))
    @settings(max_examples=120)
    def test_bit_identical_to_scalar(self, a, b, depth, seed):
        k = min(len(a), len(b)) if depth is None else depth
        rng = np.random.default_rng(seed)
        weights = rng.random(max(k, 1)) + 0.01
        (ids_a, ids_b), _ = interned(a, b)
        got = weighted_rbo_ids(ids_a, ids_b, weights, depth)
        want = weighted_rbo(a, b, weights, depth)
        assert got == want  # exact float equality, not approx

    def test_validation_matches_scalar(self):
        (ids_a, ids_b), _ = interned(["a", "b"], ["a", "b"])
        with pytest.raises(ValueError):
            weighted_rbo_ids(ids_a, ids_b, np.array([1.0]))
        with pytest.raises(ValueError):
            weighted_rbo_ids(ids_a, ids_b, np.array([-1.0, 1.0]))
        with pytest.raises(ValueError):
            weighted_rbo_ids(ids_a, ids_b, np.array([0.0, 0.0]))


class TestIntersectionParity:
    @given(ranked_lists, ranked_lists, depths)
    @settings(max_examples=120)
    def test_count_matches_percent_intersection(self, a, b, depth):
        (ids_a, ids_b), _ = interned(a, b)
        ra, rb = RankedList(a), RankedList(b)
        ta = ra.top(depth) if depth is not None else ra
        tb = rb.top(depth) if depth is not None else rb
        count = intersection_count_ids(ids_a, ids_b, depth)
        assert count == len(ta.intersection(tb))
        denom = min(len(ta), len(tb))
        got_pct = count / denom if denom else 0.0
        assert got_pct == ta.percent_intersection(tb)

    @given(st.lists(ranked_lists, min_size=2, max_size=6))
    @settings(max_examples=60)
    def test_bucket_intersections_match_set_math(self, site_lists):
        ids, _ = interned(*site_lists)
        ranked = [RankedList(s) for s in site_lists]
        buckets = (0, 1, 3, 10, 100)
        counts = bucket_intersections(ids, buckets, jobs=2)
        row = 0
        for i in range(len(ranked)):
            for j in range(i + 1, len(ranked)):
                for col, bucket in enumerate(buckets):
                    want = len(ranked[i].top(bucket).intersection(ranked[j].top(bucket)))
                    assert counts[row, col] == want
                row += 1
        assert row == counts.shape[0]


class TestRankPairsParity:
    @given(ranked_lists, ranked_lists, depths)
    @settings(max_examples=120)
    def test_matches_rank_pairs_on_truncated_lists(self, a, b, depth):
        (ids_a, ids_b), _ = interned(a, b)
        ra, rb = RankedList(a), RankedList(b)
        ta = ra.top(depth) if depth is not None else ra
        tb = rb.top(depth) if depth is not None else rb
        xs, ys = rank_pairs_ids(ids_a, ids_b, depth)
        want_xs, want_ys = ta.rank_pairs(tb)
        assert xs.tolist() == want_xs
        assert ys.tolist() == want_ys


class TestPairwiseWRBOParity:
    @given(
        st.integers(min_value=2, max_value=6),
        st.integers(min_value=1, max_value=12),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=40)
    def test_batched_equals_per_pair_scalar(self, n_lists, depth, seed):
        rng = np.random.default_rng(seed)
        universe = [f"s{i}" for i in range(depth * 3)]
        site_lists = [
            list(rng.permutation(universe)[: depth + int(rng.integers(0, 5))])
            for _ in range(n_lists)
        ]
        weights = rng.random(depth) + 0.01
        ids, _ = interned(*site_lists)
        scores = pairwise_wrbo(ids, weights, depth=depth, jobs=2)
        row = 0
        for i in range(n_lists):
            for j in range(i + 1, n_lists):
                want = weighted_rbo(site_lists[i], site_lists[j], weights, depth)
                assert scores[row] == want  # bit-identical
                row += 1
        assert row == len(scores)

    def test_jobs_do_not_change_bytes(self):
        rng = np.random.default_rng(42)
        universe = [f"s{i}" for i in range(60)]
        site_lists = [list(rng.permutation(universe)[:30]) for _ in range(6)]
        weights = rng.random(30) + 0.01
        ids, _ = interned(*site_lists)
        serial = pairwise_wrbo(ids, weights, depth=20, jobs=1)
        threaded = pairwise_wrbo(ids, weights, depth=20, jobs=4)
        assert serial.tobytes() == threaded.tobytes()

    def test_short_list_rejected(self):
        ids, _ = interned(["a", "b"], ["a"])
        with pytest.raises(ValueError):
            pairwise_wrbo(ids, np.array([1.0, 1.0]), depth=2)


class TestRankMatrix:
    @given(st.lists(nonempty_lists, min_size=1, max_size=5))
    @settings(max_examples=60)
    def test_matches_rank_lookups(self, site_lists):
        ids, vocab = interned(*site_lists)
        ranked = [RankedList(s) for s in site_lists]
        all_ids = np.unique(np.concatenate(ids))
        matrix = rank_matrix(ids, all_ids, missing=9_999)
        for r, sid in enumerate(all_ids):
            site = vocab.site_of(int(sid))
            for c, rl in enumerate(ranked):
                assert matrix[r, c] == rl.rank_or(site, 9_999)

    def test_empty_sites(self):
        ids, _ = interned(["a", "b"])
        out = rank_matrix(ids, np.empty(0, dtype=np.int64), missing=5)
        assert out.shape == (0, 1)
