"""Tests for silhouette coefficients, including bit-exact parity
between the vectorized kernel and its scalar reference."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.silhouette import (
    silhouette_samples,
    silhouette_samples_reference,
    similarity_to_distance,
)


def _two_blobs():
    """Distance matrix for two clean point groups."""
    points = np.array([[0.0], [0.1], [0.2], [5.0], [5.1], [5.2]])
    d = np.abs(points - points.T)
    labels = np.array([0, 0, 0, 1, 1, 1])
    return d, labels


class TestSilhouette:
    def test_clean_clusters_score_high(self):
        d, labels = _two_blobs()
        report = silhouette_samples(d, labels)
        assert report.average > 0.9
        assert report.cluster_average(0) > 0.9
        assert report.cluster_average(1) > 0.9

    def test_scrambled_labels_score_low(self):
        d, _ = _two_blobs()
        bad = np.array([0, 1, 0, 1, 0, 1])
        report = silhouette_samples(d, bad)
        assert report.average < 0.0

    def test_values_bounded(self):
        d, labels = _two_blobs()
        report = silhouette_samples(d, labels)
        assert np.all(report.values >= -1.0)
        assert np.all(report.values <= 1.0)

    def test_singleton_cluster_scores_zero(self):
        d = np.array([
            [0.0, 1.0, 5.0],
            [1.0, 0.0, 5.0],
            [5.0, 5.0, 0.0],
        ])
        labels = np.array([0, 0, 1])
        report = silhouette_samples(d, labels)
        assert report.values[2] == 0.0

    def test_per_cluster_keys(self):
        d, labels = _two_blobs()
        report = silhouette_samples(d, labels)
        assert set(report.per_cluster()) == {0, 1}

    def test_matches_sklearn_formula_by_hand(self):
        # 4 points, 2 clusters; verify one silhouette value manually.
        d = np.array([
            [0.0, 1.0, 4.0, 5.0],
            [1.0, 0.0, 3.0, 4.0],
            [4.0, 3.0, 0.0, 1.0],
            [5.0, 4.0, 1.0, 0.0],
        ])
        labels = np.array([0, 0, 1, 1])
        report = silhouette_samples(d, labels)
        # point 0: a = 1.0, b = mean(4,5) = 4.5, s = 3.5/4.5
        assert report.values[0] == pytest.approx(3.5 / 4.5)

    def test_requires_two_clusters(self):
        d, _ = _two_blobs()
        with pytest.raises(ValueError):
            silhouette_samples(d, np.zeros(6, dtype=int))

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            silhouette_samples(np.zeros((2, 3)), np.array([0, 1]))
        with pytest.raises(ValueError):
            silhouette_samples(np.zeros((2, 2)), np.array([0]))

    def test_negative_distances_rejected(self):
        with pytest.raises(ValueError):
            silhouette_samples(np.array([[0.0, -1.0], [-1.0, 0.0]]), np.array([0, 1]))


class TestKernelParity:
    """silhouette_samples must be *bit-identical* to the scalar loop —
    pipeline artifact bytes depend on it (DESIGN.md, "Stats kernels")."""

    @given(
        n=st.integers(min_value=2, max_value=40),
        k=st.integers(min_value=2, max_value=6),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=60, deadline=None)
    def test_bit_identical_on_random_matrices(self, n, k, seed):
        rng = np.random.default_rng(seed)
        points = rng.normal(size=(n, 2))
        d = np.sqrt(((points[:, None, :] - points[None, :, :]) ** 2).sum(-1))
        # Random labels, forced to cover at least two clusters; ragged
        # sizes and singletons arise naturally.
        labels = rng.integers(0, min(k, n), size=n)
        labels[0] = 0
        labels[1] = 1
        fast = silhouette_samples(d, labels)
        slow = silhouette_samples_reference(d, labels)
        assert np.array_equal(fast.values, slow.values)
        assert np.array_equal(fast.labels, slow.labels)

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_bit_identical_with_duplicate_points(self, seed):
        # Duplicate points give zero distances and exercise the
        # denom == 0 path in both implementations.
        rng = np.random.default_rng(seed)
        points = rng.integers(0, 3, size=12).astype(float)
        d = np.abs(points[:, None] - points[None, :])
        labels = rng.integers(0, 3, size=12)
        labels[:2] = [0, 1]
        fast = silhouette_samples(d, labels)
        slow = silhouette_samples_reference(d, labels)
        assert np.array_equal(fast.values, slow.values)

    def test_bit_identical_with_offset_labels(self):
        d, base = _two_blobs()
        labels = base * 7 + 5          # non-contiguous cluster ids
        fast = silhouette_samples(d, labels)
        slow = silhouette_samples_reference(d, labels)
        assert np.array_equal(fast.values, slow.values)

    def test_reference_validates_too(self):
        d, _ = _two_blobs()
        with pytest.raises(ValueError):
            silhouette_samples_reference(d, np.zeros(6, dtype=int))


class TestSimilarityToDistance:
    def test_conversion(self):
        sim = np.array([[1.0, 0.3], [0.3, 1.0]])
        d = similarity_to_distance(sim)
        assert d[0, 1] == pytest.approx(0.7)
        assert d[0, 0] == 0.0

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            similarity_to_distance(np.array([[1.0, 1.5], [1.5, 1.0]]))
