"""Tests for multiple-testing corrections."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.correction import bonferroni, bonferroni_adjusted, holm

p_lists = st.lists(st.floats(min_value=0, max_value=1, allow_nan=False),
                   min_size=0, max_size=40)


class TestBonferroni:
    def test_threshold_divided_by_m(self):
        # alpha=0.05, m=5 -> threshold 0.01
        assert bonferroni([0.009, 0.011, 0.5, 0.01, 1.0], 0.05) == [
            True, False, False, True, False,
        ]

    def test_empty(self):
        assert bonferroni([]) == []

    def test_adjusted_p_values(self):
        assert bonferroni_adjusted([0.01, 0.4]) == [0.02, 0.8]
        assert bonferroni_adjusted([0.9, 0.9]) == [1.0, 1.0]

    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            bonferroni([0.1], alpha=0.0)

    def test_p_validation(self):
        with pytest.raises(ValueError):
            bonferroni([1.5])

    @given(p_lists)
    @settings(max_examples=60)
    def test_never_rejects_above_alpha(self, ps):
        rejected = bonferroni(ps, 0.05)
        for p, r in zip(ps, rejected):
            if r:
                assert p <= 0.05


class TestHolm:
    def test_step_down_beats_bonferroni(self):
        ps = [0.01, 0.012, 0.9]
        # Bonferroni threshold 0.05/3=0.0167 rejects both small ones;
        # Holm also rejects both (0.01 <= 0.05/3, 0.012 <= 0.05/2).
        assert holm(ps) == [True, True, False]

    def test_stops_at_first_failure(self):
        ps = [0.001, 0.04, 0.02]
        # sorted: 0.001 (<=0.05/3 yes), 0.02 (<=0.05/2 yes), 0.04 (<=0.05 yes)
        assert holm(ps) == [True, True, True]
        ps2 = [0.001, 0.03, 0.5]
        # 0.001 yes; 0.03 > 0.025 -> stop.
        assert holm(ps2) == [True, False, False]

    @given(p_lists)
    @settings(max_examples=60)
    def test_holm_at_least_as_powerful_as_bonferroni(self, ps):
        bon = bonferroni(ps, 0.05)
        ho = holm(ps, 0.05)
        for b, h in zip(bon, ho):
            if b:
                assert h
