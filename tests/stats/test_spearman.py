"""Tests for Spearman's rho, cross-validated against scipy."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import stats as scipy_stats

from repro.core import RankedList
from repro.stats.spearman import spearman_from_lists, spearman_rho

paired = st.lists(
    st.tuples(
        st.floats(min_value=-100, max_value=100, allow_nan=False),
        st.floats(min_value=-100, max_value=100, allow_nan=False),
    ),
    min_size=3, max_size=50,
)


class TestSpearmanRho:
    def test_perfect_agreement(self):
        assert spearman_rho([1, 2, 3], [10, 20, 30]) == pytest.approx(1.0)

    def test_perfect_disagreement(self):
        assert spearman_rho([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_constant_input_is_nan(self):
        assert math.isnan(spearman_rho([1, 1, 1], [1, 2, 3]))

    def test_short_input_is_nan(self):
        assert math.isnan(spearman_rho([1], [2]))

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            spearman_rho([1, 2], [1])

    def test_tie_handling_matches_scipy(self):
        x = [1, 2, 2, 3, 4, 4, 4]
        y = [2, 1, 3, 3, 5, 4, 6]
        expected = scipy_stats.spearmanr(x, y).statistic
        assert spearman_rho(x, y) == pytest.approx(expected)

    @given(paired)
    @settings(max_examples=60)
    def test_matches_scipy(self, pairs):
        x = [p[0] for p in pairs]
        y = [p[1] for p in pairs]
        ours = spearman_rho(x, y)
        theirs = scipy_stats.spearmanr(x, y).statistic
        if math.isnan(ours) or (isinstance(theirs, float) and math.isnan(theirs)):
            assert math.isnan(ours) == math.isnan(float(theirs))
        else:
            assert ours == pytest.approx(float(theirs), abs=1e-9)

    @given(paired)
    @settings(max_examples=40)
    def test_bounded(self, pairs):
        rho = spearman_rho([p[0] for p in pairs], [p[1] for p in pairs])
        if not math.isnan(rho):
            assert -1.0 - 1e-9 <= rho <= 1.0 + 1e-9


class TestSpearmanFromLists:
    def test_identical_lists(self):
        a = RankedList(["x", "y", "z"])
        assert spearman_from_lists(a, a) == pytest.approx(1.0)

    def test_reversed_lists(self):
        a = RankedList(["x", "y", "z"])
        b = RankedList(["z", "y", "x"])
        assert spearman_from_lists(a, b) == pytest.approx(-1.0)

    def test_uses_only_the_intersection(self):
        a = RankedList(["x", "q", "y", "z"])
        b = RankedList(["x", "y", "z", "unrelated"])
        # Intersection x, y, z is perfectly ordered in both lists.
        assert spearman_from_lists(a, b) == pytest.approx(1.0)

    def test_disjoint_lists_nan(self):
        a = RankedList(["x"])
        b = RankedList(["y"])
        assert math.isnan(spearman_from_lists(a, b))
