"""Tests for the from-scratch DBSCAN, including label-exact parity
between the vectorized kernel and its scalar reference."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.dbscan import NOISE, dbscan, dbscan_reference, eps_sweep


def _distance_matrix(points):
    pts = np.asarray(points, dtype=float).reshape(len(points), -1)
    return np.sqrt(((pts[:, None, :] - pts[None, :, :]) ** 2).sum(-1))


class TestDBSCAN:
    def test_recovers_two_blobs(self):
        d = _distance_matrix([0.0, 0.1, 0.2, 5.0, 5.1, 5.2])
        result = dbscan(d, eps=0.5, min_samples=2)
        assert result.n_clusters == 2
        assert result.labels[0] == result.labels[1] == result.labels[2]
        assert result.labels[3] == result.labels[4] == result.labels[5]
        assert result.labels[0] != result.labels[3]
        assert result.n_noise == 0

    def test_isolated_point_is_noise(self):
        d = _distance_matrix([0.0, 0.1, 0.2, 100.0])
        result = dbscan(d, eps=0.5, min_samples=2)
        assert result.labels[3] == NOISE
        assert result.n_noise == 1

    def test_min_samples_gates_core_points(self):
        d = _distance_matrix([0.0, 0.1, 5.0, 5.1])
        strict = dbscan(d, eps=0.5, min_samples=3)
        assert strict.n_clusters == 0
        assert strict.n_noise == 4

    def test_border_points_join_first_cluster(self):
        # 0.0 and 0.4 are core-adjacent; 0.9 is within eps of 0.4 only.
        d = _distance_matrix([0.0, 0.4, 0.8, 0.9])
        result = dbscan(d, eps=0.5, min_samples=2)
        assert result.n_clusters == 1
        assert (result.labels != NOISE).all()

    def test_varying_density_failure_mode(self):
        """The Section 5.3.1 claim: one eps cannot serve a tight cluster
        and a loose cluster simultaneously."""
        tight = [0.0, 0.05, 0.10]
        loose = [10.0, 11.5, 13.0]
        d = _distance_matrix(tight + loose)
        small_eps = dbscan(d, eps=0.2, min_samples=2)
        assert small_eps.n_clusters == 1         # loose cluster dissolves
        assert small_eps.n_noise == 3
        large_eps = dbscan(d, eps=1.6, min_samples=2)
        assert large_eps.n_clusters == 2
        # ...but at that eps the tight cluster would swallow anything
        # within 1.6 of it; on denser data this merges clusters.

    def test_validation(self):
        d = _distance_matrix([0.0, 1.0])
        with pytest.raises(ValueError):
            dbscan(d, eps=0)
        with pytest.raises(ValueError):
            dbscan(d, eps=1, min_samples=0)
        with pytest.raises(ValueError):
            dbscan(np.zeros((2, 3)), eps=1)

    def test_members_partition_non_noise(self):
        d = _distance_matrix([0.0, 0.1, 5.0, 5.1, 99.0])
        result = dbscan(d, eps=0.5, min_samples=2)
        assigned = np.concatenate([
            result.members(c) for c in range(result.n_clusters)
        ])
        assert sorted(assigned.tolist()) == [0, 1, 2, 3]


class TestKernelParity:
    """Frontier-wave BFS must assign exactly the labels the per-point
    queue BFS assigns — including which cluster claims border points."""

    @given(
        n=st.integers(min_value=2, max_value=40),
        eps=st.floats(min_value=0.05, max_value=3.0, allow_nan=False),
        min_samples=st.integers(min_value=1, max_value=5),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=60, deadline=None)
    def test_labels_identical_on_random_points(self, n, eps, min_samples, seed):
        rng = np.random.default_rng(seed)
        points = rng.normal(size=(n, 2))
        d = np.sqrt(((points[:, None, :] - points[None, :, :]) ** 2).sum(-1))
        fast = dbscan(d, eps, min_samples)
        slow = dbscan_reference(d, eps, min_samples)
        assert np.array_equal(fast.labels, slow.labels)
        assert np.array_equal(fast.core_mask, slow.core_mask)

    @given(
        eps=st.integers(min_value=1, max_value=4),
        min_samples=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_labels_identical_at_exact_eps_boundaries(self, eps, min_samples, seed):
        # Integer grid points with an integer eps: many distances land
        # exactly ON the eps boundary, the tie case where an off-by-ulp
        # neighborhood test would diverge.
        rng = np.random.default_rng(seed)
        points = rng.integers(0, 6, size=15).astype(float)
        d = np.abs(points[:, None] - points[None, :])
        fast = dbscan(d, float(eps), min_samples)
        slow = dbscan_reference(d, float(eps), min_samples)
        assert np.array_equal(fast.labels, slow.labels)
        assert np.array_equal(fast.core_mask, slow.core_mask)

    def test_border_point_claimed_by_same_cluster(self):
        # A chain with a point reachable from two clusters: seeding
        # order decides the owner, and both paths must agree.
        d = _distance_matrix([0.0, 0.4, 1.0, 1.6, 2.0])
        fast = dbscan(d, eps=0.5, min_samples=2)
        slow = dbscan_reference(d, eps=0.5, min_samples=2)
        assert np.array_equal(fast.labels, slow.labels)

    def test_reference_validates_too(self):
        with pytest.raises(ValueError):
            dbscan_reference(np.zeros((2, 2)), eps=0)


class TestEpsSweep:
    def test_sweep_shapes(self):
        d = _distance_matrix([0.0, 0.1, 5.0, 5.1])
        sweep = eps_sweep(d, np.array([0.05, 0.5, 10.0]), min_samples=2)
        assert len(sweep) == 3
        eps0, clusters0, noise0 = sweep[0]
        assert clusters0 == 0 and noise0 == 4
        _, clusters1, noise1 = sweep[1]
        assert clusters1 == 2 and noise1 == 0
        _, clusters2, _ = sweep[2]
        assert clusters2 == 1  # everything merges
