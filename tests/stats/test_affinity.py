"""Tests for affinity propagation."""

import numpy as np
import pytest

from repro.stats.affinity import affinity_propagation


def _block_similarity(sizes, within=0.9, between=0.1, noise=0.02, seed=0):
    """A similarity matrix with planted blocks."""
    rng = np.random.default_rng(seed)
    n = sum(sizes)
    labels = np.concatenate([[i] * s for i, s in enumerate(sizes)])
    sim = np.where(labels[:, None] == labels[None, :], within, between)
    sim = sim + noise * rng.standard_normal((n, n))
    sim = (sim + sim.T) / 2
    return sim, labels


class TestClustering:
    def test_recovers_planted_blocks(self):
        sim, truth = _block_similarity([5, 5, 5])
        result = affinity_propagation(sim, seed=1)
        assert result.n_clusters == 3
        # Same-block points share a label; cross-block points do not.
        for block in range(3):
            block_labels = result.labels[truth == block]
            assert len(set(block_labels.tolist())) == 1
        assert len(set(result.labels.tolist())) == 3

    def test_exemplars_belong_to_their_cluster(self):
        sim, _ = _block_similarity([4, 4])
        result = affinity_propagation(sim, seed=2)
        for cluster_index, exemplar in enumerate(result.exemplars):
            assert result.labels[exemplar] == cluster_index

    def test_single_point(self):
        result = affinity_propagation(np.array([[1.0]]))
        assert result.n_clusters == 1
        assert result.labels.tolist() == [0]

    def test_low_preference_fewer_clusters(self):
        sim, _ = _block_similarity([4, 4, 4], within=0.6, between=0.4)
        many = affinity_propagation(sim, preference=0.6, seed=3)
        few = affinity_propagation(sim, preference=-2.0, seed=3)
        assert few.n_clusters <= many.n_clusters

    def test_members_partition_points(self):
        sim, _ = _block_similarity([6, 6])
        result = affinity_propagation(sim, seed=4)
        seen = np.concatenate([result.members(c) for c in range(result.n_clusters)])
        assert sorted(seen.tolist()) == list(range(12))

    def test_deterministic_given_seed(self):
        sim, _ = _block_similarity([5, 5])
        a = affinity_propagation(sim, seed=7)
        b = affinity_propagation(sim, seed=7)
        assert np.array_equal(a.labels, b.labels)

    def test_matches_sklearn_reference_on_blocks(self):
        # Not a bitwise comparison (different damping paths), but both
        # must find the same partition on a clean block matrix.
        sim, truth = _block_similarity([6, 6, 6], noise=0.01)
        result = affinity_propagation(sim, seed=5)
        assert result.n_clusters == 3
        relabel = {}
        for point, label in enumerate(result.labels):
            relabel.setdefault(label, truth[point])
            assert relabel[label] == truth[point]


class TestNonConvergence:
    """Labels are *always* fully assigned; ``converged`` — not a -1
    sentinel — signals whether the run settled (regression for the old
    docstring that promised "-1 if not converged" but never emitted it)."""

    def test_unconverged_run_still_assigns_every_point(self):
        sim, _ = _block_similarity([5, 5, 5])
        result = affinity_propagation(sim, max_iterations=1)
        assert not result.converged
        assert np.all(result.labels >= 0)
        assert set(result.labels.tolist()) == set(range(result.n_clusters))
        assert result.n_clusters >= 1

    def test_degenerate_fallback_single_cluster(self):
        # Heavy damping and one iteration leave no self-electing
        # exemplar: the fallback assigns everyone to one best-effort
        # cluster instead of leaving gaps.
        sim, _ = _block_similarity([4, 4])
        result = affinity_propagation(sim, damping=0.99, max_iterations=1)
        assert not result.converged
        assert result.n_clusters == 1
        assert np.all(result.labels == 0)
        assert 0 <= int(result.exemplars[0]) < sim.shape[0]

    def test_converged_run_reports_converged(self):
        sim, _ = _block_similarity([5, 5])
        result = affinity_propagation(sim, seed=1)
        assert result.converged


class TestValidation:
    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            affinity_propagation(np.zeros((2, 3)))

    def test_bad_damping_rejected(self):
        with pytest.raises(ValueError):
            affinity_propagation(np.eye(3), damping=0.4)
        with pytest.raises(ValueError):
            affinity_propagation(np.eye(3), damping=1.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            affinity_propagation(np.zeros((0, 0)))
