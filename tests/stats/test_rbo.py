"""Tests for RBO and traffic-weighted RBO."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import RankedList, TrafficDistribution
from repro.stats.rbo import agreement_sequence, rbo, traffic_weighted_rbo, weighted_rbo

DIST = TrafficDistribution([(1, 0.17), (6, 0.25), (100, 0.4), (1000, 0.6)],
                           total_sites=1000)

ranked_lists = st.lists(
    st.text(alphabet="abcdefghij", min_size=1, max_size=4),
    min_size=1, max_size=30, unique=True,
)


class TestAgreementSequence:
    def test_identical_lists(self):
        a = ["x", "y", "z"]
        assert list(agreement_sequence(a, a)) == [1.0, 1.0, 1.0]

    def test_disjoint_lists(self):
        assert list(agreement_sequence(["a", "b"], ["c", "d"])) == [0.0, 0.0]

    def test_swap_at_top(self):
        # depth 1: no overlap; depth 2: both seen.
        seq = agreement_sequence(["a", "b"], ["b", "a"])
        assert list(seq) == [0.0, 1.0]

    def test_depth_truncation(self):
        seq = agreement_sequence(["a", "b", "c"], ["a", "b", "c"], depth=2)
        assert len(seq) == 2

    def test_bad_depth(self):
        with pytest.raises(ValueError):
            agreement_sequence(["a"], ["a"], depth=0)

    @given(ranked_lists, ranked_lists)
    @settings(max_examples=60)
    def test_agreement_bounded_and_consistent(self, a, b):
        seq = agreement_sequence(a, b)
        k = min(len(a), len(b))
        assert len(seq) == k
        for d in range(k):
            expected = len(set(a[: d + 1]) & set(b[: d + 1])) / (d + 1)
            assert seq[d] == pytest.approx(expected)


class TestClassicRBO:
    def test_identical_is_one(self):
        a = RankedList([f"s{i}" for i in range(20)])
        assert rbo(a, a) == pytest.approx(1.0)

    def test_disjoint_is_zero(self):
        a = RankedList(["a", "b", "c"])
        b = RankedList(["x", "y", "z"])
        assert rbo(a, b) == pytest.approx(0.0, abs=1e-9)

    def test_p_validation(self):
        with pytest.raises(ValueError):
            rbo(["a"], ["a"], p=1.0)

    def test_head_agreement_worth_more(self):
        base = [f"s{i}" for i in range(10)]
        head_swap = list(base)
        head_swap[0], head_swap[9] = head_swap[9], head_swap[0]
        tail_swap = list(base)
        tail_swap[8], tail_swap[9] = tail_swap[9], tail_swap[8]
        assert rbo(base, tail_swap) > rbo(base, head_swap)

    @given(ranked_lists, ranked_lists)
    @settings(max_examples=50)
    def test_bounded_and_symmetric(self, a, b):
        val = rbo(a, b)
        assert 0.0 <= val <= 1.0
        assert val == pytest.approx(rbo(b, a))


class TestWeightedRBO:
    def test_identical_is_one(self):
        a = ["x", "y", "z"]
        assert weighted_rbo(a, a, np.array([0.5, 0.3, 0.2])) == pytest.approx(1.0)

    def test_weights_steer_the_score(self):
        a = ["x", "y"]
        b = ["x", "q"]
        head_heavy = weighted_rbo(a, b, np.array([0.9, 0.1]))
        tail_heavy = weighted_rbo(a, b, np.array([0.1, 0.9]))
        assert head_heavy > tail_heavy

    def test_insufficient_weights_rejected(self):
        with pytest.raises(ValueError):
            weighted_rbo(["a", "b"], ["a", "b"], np.array([1.0]))

    def test_negative_weights_rejected(self):
        with pytest.raises(ValueError):
            weighted_rbo(["a"], ["a"], np.array([-1.0]))

    def test_zero_weights_rejected(self):
        with pytest.raises(ValueError):
            weighted_rbo(["a"], ["a"], np.array([0.0]))

    @given(ranked_lists, ranked_lists)
    @settings(max_examples=50)
    def test_traffic_weighted_bounded_and_symmetric(self, a, b):
        ra, rb = RankedList(a), RankedList(b)
        val = traffic_weighted_rbo(ra, rb, DIST)
        assert 0.0 <= val <= 1.0
        assert val == pytest.approx(traffic_weighted_rbo(rb, ra, DIST))

    def test_traffic_weighting_emphasises_rank_one(self):
        # Same #1 site, everything else different, vs different #1 site,
        # everything else shared: the traffic curve (17 % at rank 1)
        # must make the shared-#1 pair more similar at shallow depth.
        same_head_a = RankedList(["g", "a1", "a2", "a3"])
        same_head_b = RankedList(["g", "b1", "b2", "b3"])
        diff_head_a = RankedList(["g", "c1", "c2", "c3"])
        diff_head_b = RankedList(["n", "g", "c2", "c3"])
        same = traffic_weighted_rbo(same_head_a, same_head_b, DIST, depth=2)
        diff = traffic_weighted_rbo(diff_head_a, diff_head_b, DIST, depth=2)
        assert same > diff
