"""Tests for descriptive statistics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.descriptive import Quartiles, mean, median, quantile, quartiles, rankdata

floats = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
    min_size=1, max_size=60,
)


class TestMedianQuantile:
    def test_median_odd(self):
        assert median([3, 1, 2]) == 2

    def test_median_even_averages(self):
        assert median([1, 2, 3, 4]) == 2.5

    def test_median_empty_raises(self):
        with pytest.raises(ValueError):
            median([])

    def test_quantile_endpoints(self):
        data = [5, 1, 9, 3]
        assert quantile(data, 0.0) == 1
        assert quantile(data, 1.0) == 9

    def test_quantile_interpolates(self):
        assert quantile([0, 10], 0.25) == 2.5

    def test_quantile_range_check(self):
        with pytest.raises(ValueError):
            quantile([1], 1.5)

    @given(floats)
    @settings(max_examples=60)
    def test_median_matches_numpy(self, data):
        assert median(data) == pytest.approx(float(np.median(data)), rel=1e-9, abs=1e-9)

    @given(floats, st.floats(min_value=0, max_value=1))
    @settings(max_examples=60)
    def test_quantile_matches_numpy(self, data, q):
        assert quantile(data, q) == pytest.approx(
            float(np.quantile(data, q)), rel=1e-9, abs=1e-6
        )


class TestQuartiles:
    def test_ordering(self):
        q = quartiles(range(101))
        assert q.q25 <= q.median <= q.q75
        assert q.median == 50
        assert q.iqr == q.q75 - q.q25

    def test_contains(self):
        q = Quartiles(1.0, 2.0, 3.0)
        assert 2.5 in q
        assert 0.5 not in q


class TestRankdata:
    def test_simple_ranks(self):
        assert list(rankdata([10, 30, 20])) == [1, 3, 2]

    def test_ties_get_average_rank(self):
        assert list(rankdata([1, 2, 2, 3])) == [1, 2.5, 2.5, 4]

    def test_all_tied(self):
        assert list(rankdata([5, 5, 5])) == [2, 2, 2]

    @given(floats)
    @settings(max_examples=60)
    def test_ranks_sum_is_invariant(self, data):
        n = len(data)
        assert float(rankdata(data).sum()) == pytest.approx(n * (n + 1) / 2)

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            rankdata(np.zeros((2, 2)))


class TestMean:
    def test_mean(self):
        assert mean([1, 2, 3]) == 2

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            mean([])
