"""Tests for Fisher's exact test, cross-validated against scipy."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import stats as scipy_stats

from repro.stats.fisher import (
    fisher_exact,
    hypergeom_logpmf,
    normalized_difference,
    proportion_test,
)

counts = st.integers(min_value=0, max_value=120)


class TestFisherExact:
    def test_known_table(self):
        ours = fisher_exact(((8, 2), (1, 5)))
        theirs = scipy_stats.fisher_exact([[8, 2], [1, 5]])[1]
        assert ours == pytest.approx(theirs, rel=1e-9)

    def test_independent_table_p_one(self):
        assert fisher_exact(((5, 5), (5, 5))) == pytest.approx(1.0)

    def test_empty_table(self):
        assert fisher_exact(((0, 0), (0, 0))) == 1.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            fisher_exact(((-1, 2), (3, 4)))

    @given(counts, counts, counts, counts)
    @settings(max_examples=80, deadline=None)
    def test_matches_scipy(self, a, b, c, d):
        ours = fisher_exact(((a, b), (c, d)))
        theirs = scipy_stats.fisher_exact([[a, b], [c, d]])[1]
        assert ours == pytest.approx(theirs, rel=1e-7, abs=1e-12)

    @given(counts, counts, counts, counts)
    @settings(max_examples=40, deadline=None)
    def test_p_value_in_unit_interval(self, a, b, c, d):
        assert 0.0 <= fisher_exact(((a, b), (c, d))) <= 1.0


class TestHypergeomLogpmf:
    def test_matches_scipy(self):
        ours = hypergeom_logpmf(3, 20, 7, 12)
        theirs = scipy_stats.hypergeom.logpmf(3, 20, 7, 12)
        assert ours == pytest.approx(float(theirs))

    def test_impossible_outcome(self):
        assert hypergeom_logpmf(10, 10, 2, 3) == float("-inf")


class TestProportionTest:
    def test_equal_shares_not_significant(self):
        result = proportion_test(0.10, 0.10)
        assert result.p_value == pytest.approx(1.0)
        assert not result.significant()

    def test_large_gap_significant(self):
        result = proportion_test(0.20, 0.05, effective_n=10_000)
        assert result.significant(0.05)
        assert result.difference == pytest.approx(0.15)

    def test_power_grows_with_effective_n(self):
        small = proportion_test(0.012, 0.010, effective_n=1_000)
        large = proportion_test(0.012, 0.010, effective_n=1_000_000)
        assert large.p_value < small.p_value

    def test_share_bounds(self):
        with pytest.raises(ValueError):
            proportion_test(1.2, 0.5)
        with pytest.raises(ValueError):
            proportion_test(0.5, -0.1)


class TestNormalizedDifference:
    def test_sign_convention(self):
        # Positive = Android-leaning, negative = Windows-leaning.
        assert normalized_difference(0.2, 0.1) > 0
        assert normalized_difference(0.1, 0.2) < 0

    def test_bounds(self):
        assert normalized_difference(1.0, 0.0) == 1.0
        assert normalized_difference(0.0, 1.0) == -1.0
        assert normalized_difference(0.0, 0.0) == 0.0

    def test_formula(self):
        assert normalized_difference(0.3, 0.1) == pytest.approx((0.3 - 0.1) / 0.3)

    @given(
        st.floats(min_value=0, max_value=10, allow_nan=False),
        st.floats(min_value=0, max_value=10, allow_nan=False),
    )
    @settings(max_examples=60)
    def test_always_in_minus_one_one(self, a, w):
        assert -1.0 <= normalized_difference(a, w) <= 1.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            normalized_difference(-0.1, 0.2)
