"""Tests for Fisher's exact test, cross-validated against scipy,
plus batch-vs-scalar parity for the vectorized kernel."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import stats as scipy_stats

from repro.stats.fisher import (
    _log_factorials,
    fisher_exact,
    fisher_exact_batch,
    hypergeom_logpmf,
    normalized_difference,
    proportion_test,
    proportion_test_batch,
)

counts = st.integers(min_value=0, max_value=120)

#: np.exp may differ from math.exp in the last ulp (see the module
#: docstring of repro.stats.fisher); everything else is bit-identical,
#: so batched p-values sit within a few ulp of the scalar reference.
BATCH_RTOL = 1e-12


class TestFisherExact:
    def test_known_table(self):
        ours = fisher_exact(((8, 2), (1, 5)))
        theirs = scipy_stats.fisher_exact([[8, 2], [1, 5]])[1]
        assert ours == pytest.approx(theirs, rel=1e-9)

    def test_independent_table_p_one(self):
        assert fisher_exact(((5, 5), (5, 5))) == pytest.approx(1.0)

    def test_empty_table(self):
        assert fisher_exact(((0, 0), (0, 0))) == 1.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            fisher_exact(((-1, 2), (3, 4)))

    @given(counts, counts, counts, counts)
    @settings(max_examples=80, deadline=None)
    def test_matches_scipy(self, a, b, c, d):
        ours = fisher_exact(((a, b), (c, d)))
        theirs = scipy_stats.fisher_exact([[a, b], [c, d]])[1]
        assert ours == pytest.approx(theirs, rel=1e-7, abs=1e-12)

    @given(counts, counts, counts, counts)
    @settings(max_examples=40, deadline=None)
    def test_p_value_in_unit_interval(self, a, b, c, d):
        assert 0.0 <= fisher_exact(((a, b), (c, d))) <= 1.0


class TestHypergeomLogpmf:
    def test_matches_scipy(self):
        ours = hypergeom_logpmf(3, 20, 7, 12)
        theirs = scipy_stats.hypergeom.logpmf(3, 20, 7, 12)
        assert ours == pytest.approx(float(theirs))

    def test_impossible_outcome(self):
        assert hypergeom_logpmf(10, 10, 2, 3) == float("-inf")


class TestLogFactorialTable:
    def test_entries_match_lgamma(self):
        table = _log_factorials(200)
        for i in (0, 1, 2, 50, 199, 200):
            assert table[i] == math.lgamma(i + 1)

    def test_grows_on_demand(self):
        small = _log_factorials(10)
        big = _log_factorials(len(small) + 500)
        assert len(big) >= len(small) + 501
        assert np.array_equal(big[: len(small)], small)


class TestFisherBatch:
    @given(st.lists(st.tuples(counts, counts, counts, counts), min_size=1, max_size=30))
    @settings(max_examples=60, deadline=None)
    def test_matches_scalar_reference(self, tables):
        batch = fisher_exact_batch([((a, b), (c, d)) for a, b, c, d in tables])
        scalar = [fisher_exact(((a, b), (c, d))) for a, b, c, d in tables]
        assert batch.shape == (len(tables),)
        np.testing.assert_allclose(batch, scalar, rtol=BATCH_RTOL, atol=0.0)

    @given(st.lists(st.tuples(counts, counts, counts, counts), min_size=1, max_size=30))
    @settings(max_examples=40, deadline=None)
    def test_same_significance_decisions(self, tables):
        batch = fisher_exact_batch([(a, b, c, d) for a, b, c, d in tables])
        scalar = [fisher_exact(((a, b), (c, d))) for a, b, c, d in tables]
        for alpha in (0.05, 0.01, 0.001):
            assert [p <= alpha for p in batch] == [p <= alpha for p in scalar]

    def test_flat_and_nested_shapes_agree(self):
        nested = fisher_exact_batch([((8, 2), (1, 5)), ((3, 3), (3, 3))])
        flat = fisher_exact_batch([(8, 2, 1, 5), (3, 3, 3, 3)])
        assert np.array_equal(nested, flat)

    def test_zero_margin_tables(self):
        # Degenerate margins collapse the support to one term; both
        # paths return exactly 1.0.
        tables = [(0, 0, 0, 0), (0, 5, 0, 7), (4, 0, 6, 0), (0, 0, 3, 9)]
        batch = fisher_exact_batch(tables)
        scalar = [fisher_exact(((a, b), (c, d))) for a, b, c, d in tables]
        assert batch.tolist() == scalar

    def test_duplicates_memoized_to_identical_values(self):
        tables = [(8, 2, 1, 5)] * 5 + [(1, 9, 9, 1)] + [(8, 2, 1, 5)]
        batch = fisher_exact_batch(tables)
        assert len(set(batch[[0, 1, 2, 3, 4, 6]].tolist())) == 1
        assert batch[5] != batch[0]

    def test_empty_input(self):
        out = fisher_exact_batch(np.empty((0, 4), dtype=int))
        assert out.shape == (0,)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            fisher_exact_batch([(1, -2, 3, 4)])

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError):
            fisher_exact_batch([(1, 2, 3)])


class TestProportionTest:
    def test_equal_shares_not_significant(self):
        result = proportion_test(0.10, 0.10)
        assert result.p_value == pytest.approx(1.0)
        assert not result.significant()

    def test_large_gap_significant(self):
        result = proportion_test(0.20, 0.05, effective_n=10_000)
        assert result.significant(0.05)
        assert result.difference == pytest.approx(0.15)

    def test_power_grows_with_effective_n(self):
        small = proportion_test(0.012, 0.010, effective_n=1_000)
        large = proportion_test(0.012, 0.010, effective_n=1_000_000)
        assert large.p_value < small.p_value

    def test_share_bounds(self):
        with pytest.raises(ValueError):
            proportion_test(1.2, 0.5)
        with pytest.raises(ValueError):
            proportion_test(0.5, -0.1)


class TestHalfUpRounding:
    """share * effective_n must round half UP, not half-to-even.

    The old ``round(share * effective_n)`` used banker's rounding, so an
    exact-half product flipped its count (and potentially significance)
    on the parity of the neighbouring integer."""

    def test_exact_half_rounds_up(self):
        # 0.25 * 2 = 0.5 exactly (both powers of two): half-up gives
        # count 1, banker's rounding would give 0.
        result = proportion_test(0.25, 0.75, effective_n=2)
        assert result.p_value == fisher_exact(((1, 1), (2, 0)))
        assert result.p_value != fisher_exact(((0, 2), (2, 0)))

    def test_exact_half_single_trial(self):
        # 0.5 * 1 = 0.5: round() gives 0, half-up gives 1.
        result = proportion_test(0.5, 0.0, effective_n=1)
        assert result.p_value == fisher_exact(((1, 0), (0, 1)))

    def test_batch_uses_same_rounding(self):
        scalar = proportion_test(0.25, 0.75, effective_n=2)
        [batch] = proportion_test_batch([0.25], [0.75], effective_n=2)
        assert batch.p_value == pytest.approx(scalar.p_value, rel=BATCH_RTOL)


class TestProportionTestBatch:
    shares = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)

    @given(st.lists(st.tuples(shares, shares), min_size=1, max_size=25))
    @settings(max_examples=50, deadline=None)
    def test_matches_scalar_reference(self, pairs):
        effective_n = 500
        a = [p[0] for p in pairs]
        b = [p[1] for p in pairs]
        batch = proportion_test_batch(a, b, effective_n)
        assert len(batch) == len(pairs)
        for result, (sa, sb) in zip(batch, pairs):
            scalar = proportion_test(sa, sb, effective_n)
            assert result.p_value == pytest.approx(scalar.p_value, rel=BATCH_RTOL)
            assert result.proportion_a == sa
            assert result.proportion_b == sb
            assert result.difference == scalar.difference

    def test_repeated_zero_cells_price_once(self):
        # The Figure 4 grid is full of (0.0, 0.0) cells; they must all
        # come back as the same (non-significant) result.
        batch = proportion_test_batch([0.0] * 10, [0.0] * 10)
        assert all(r.p_value == batch[0].p_value for r in batch)
        assert not batch[0].significant()

    def test_validation(self):
        with pytest.raises(ValueError):
            proportion_test_batch([0.1, 0.2], [0.1])
        with pytest.raises(ValueError):
            proportion_test_batch([1.5], [0.1])
        with pytest.raises(ValueError):
            proportion_test_batch([[0.1]], [[0.1]])
        with pytest.raises(ValueError):
            proportion_test_batch([0.1], [0.1], effective_n=0)


class TestNormalizedDifference:
    def test_sign_convention(self):
        # Positive = Android-leaning, negative = Windows-leaning.
        assert normalized_difference(0.2, 0.1) > 0
        assert normalized_difference(0.1, 0.2) < 0

    def test_bounds(self):
        assert normalized_difference(1.0, 0.0) == 1.0
        assert normalized_difference(0.0, 1.0) == -1.0
        assert normalized_difference(0.0, 0.0) == 0.0

    def test_formula(self):
        assert normalized_difference(0.3, 0.1) == pytest.approx((0.3 - 0.1) / 0.3)

    @given(
        st.floats(min_value=0, max_value=10, allow_nan=False),
        st.floats(min_value=0, max_value=10, allow_nan=False),
    )
    @settings(max_examples=60)
    def test_always_in_minus_one_one(self, a, w):
        assert -1.0 <= normalized_difference(a, w) <= 1.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            normalized_difference(-0.1, 0.2)
