"""Tests for Kendall's tau, cross-validated against scipy."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import stats as scipy_stats

from repro.core import RankedList
from repro.stats.kendall import kendall_from_lists, kendall_tau

paired = st.lists(
    st.tuples(
        st.floats(min_value=-50, max_value=50, allow_nan=False),
        st.floats(min_value=-50, max_value=50, allow_nan=False),
    ),
    min_size=3, max_size=30,
)


class TestKendallTau:
    def test_perfect_agreement(self):
        assert kendall_tau([1, 2, 3], [10, 20, 30]) == pytest.approx(1.0)

    def test_perfect_disagreement(self):
        assert kendall_tau([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_constant_is_nan(self):
        assert math.isnan(kendall_tau([1, 1, 1], [1, 2, 3]))

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            kendall_tau([1], [1, 2])

    def test_ties_match_scipy(self):
        x = [1, 2, 2, 3, 3, 3]
        y = [1, 3, 2, 4, 4, 5]
        expected = scipy_stats.kendalltau(x, y).statistic
        assert kendall_tau(x, y) == pytest.approx(float(expected))

    @given(paired)
    @settings(max_examples=50)
    def test_matches_scipy(self, pairs):
        x = [p[0] for p in pairs]
        y = [p[1] for p in pairs]
        ours = kendall_tau(x, y)
        theirs = scipy_stats.kendalltau(x, y).statistic
        if math.isnan(ours) or (isinstance(theirs, float) and math.isnan(theirs)):
            assert math.isnan(ours) == math.isnan(float(theirs))
        else:
            assert ours == pytest.approx(float(theirs), abs=1e-9)

    @given(paired)
    @settings(max_examples=30)
    def test_bounded(self, pairs):
        tau = kendall_tau([p[0] for p in pairs], [p[1] for p in pairs])
        if not math.isnan(tau):
            assert -1.0 - 1e-9 <= tau <= 1.0 + 1e-9


class TestKendallFromLists:
    def test_identical_lists(self):
        a = RankedList(["x", "y", "z"])
        assert kendall_from_lists(a, a) == pytest.approx(1.0)

    def test_tau_does_not_exceed_rho_magnitude_ordering(self):
        # Not a theorem, but for our moderately shuffled lists tau is
        # typically below rho; just sanity-check both are positive for
        # similar lists.
        from repro.stats.spearman import spearman_from_lists
        a = RankedList([f"s{i}" for i in range(30)])
        shuffled = list(a.sites)
        shuffled[0], shuffled[3] = shuffled[3], shuffled[0]
        shuffled[10], shuffled[15] = shuffled[15], shuffled[10]
        b = RankedList(shuffled)
        assert kendall_from_lists(a, b) > 0.8
        assert spearman_from_lists(a, b) > 0.8

    def test_disjoint_nan(self):
        assert math.isnan(kendall_from_lists(RankedList(["a"]), RankedList(["b"])))
