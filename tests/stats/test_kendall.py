"""Tests for Kendall's tau, cross-validated against scipy."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import stats as scipy_stats

from repro.core import RankedList
from repro.stats.kendall import (
    kendall_from_lists,
    kendall_tau,
    kendall_tau_reference,
)

paired = st.lists(
    st.tuples(
        st.floats(min_value=-50, max_value=50, allow_nan=False),
        st.floats(min_value=-50, max_value=50, allow_nan=False),
    ),
    min_size=3, max_size=30,
)

#: Small integer ranges force heavy ties in x, y, and jointly — the
#: cases where Knight's tie adjustments can drift from the definition.
tied_paired = st.lists(
    st.tuples(st.integers(-4, 4), st.integers(-4, 4)),
    min_size=0, max_size=60,
)


class TestKendallTau:
    def test_perfect_agreement(self):
        assert kendall_tau([1, 2, 3], [10, 20, 30]) == pytest.approx(1.0)

    def test_perfect_disagreement(self):
        assert kendall_tau([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_constant_is_nan(self):
        assert math.isnan(kendall_tau([1, 1, 1], [1, 2, 3]))

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            kendall_tau([1], [1, 2])

    def test_ties_match_scipy(self):
        x = [1, 2, 2, 3, 3, 3]
        y = [1, 3, 2, 4, 4, 5]
        expected = scipy_stats.kendalltau(x, y).statistic
        assert kendall_tau(x, y) == pytest.approx(float(expected))

    @given(paired)
    @settings(max_examples=50)
    def test_matches_scipy(self, pairs):
        x = [p[0] for p in pairs]
        y = [p[1] for p in pairs]
        ours = kendall_tau(x, y)
        theirs = scipy_stats.kendalltau(x, y).statistic
        if math.isnan(ours) or (isinstance(theirs, float) and math.isnan(theirs)):
            assert math.isnan(ours) == math.isnan(float(theirs))
        else:
            assert ours == pytest.approx(float(theirs), abs=1e-9)

    @given(paired)
    @settings(max_examples=30)
    def test_bounded(self, pairs):
        tau = kendall_tau([p[0] for p in pairs], [p[1] for p in pairs])
        if not math.isnan(tau):
            assert -1.0 - 1e-9 <= tau <= 1.0 + 1e-9


class TestKnightMatchesReference:
    """kendall_tau is Knight's O(n log n); the quadratic definition stays
    as kendall_tau_reference and the two must agree *bitwise* — every
    intermediate in both is an exact integer count."""

    @given(paired)
    @settings(max_examples=100)
    def test_float_inputs_exact(self, pairs):
        x = [p[0] for p in pairs]
        y = [p[1] for p in pairs]
        fast = kendall_tau(x, y)
        ref = kendall_tau_reference(x, y)
        assert (math.isnan(fast) and math.isnan(ref)) or fast == ref

    @given(tied_paired)
    @settings(max_examples=100)
    def test_tie_heavy_inputs_exact(self, pairs):
        x = [p[0] for p in pairs]
        y = [p[1] for p in pairs]
        fast = kendall_tau(x, y)
        ref = kendall_tau_reference(x, y)
        assert (math.isnan(fast) and math.isnan(ref)) or fast == ref

    def test_constant_inputs_nan_in_both(self):
        for x, y in (
            ([2, 2, 2], [1, 2, 3]),
            ([1, 2, 3], [7, 7, 7]),
            ([5, 5], [5, 5]),
            ([], []),
            ([1], [1]),
        ):
            assert math.isnan(kendall_tau(x, y))
            assert math.isnan(kendall_tau_reference(x, y))

    def test_length_mismatch_in_both(self):
        with pytest.raises(ValueError):
            kendall_tau_reference([1], [1, 2])
        with pytest.raises(ValueError):
            kendall_tau([1], [1, 2])

    def test_above_merge_cutoff(self):
        # _sort_and_count brute-forces blocks of <= 64; exercise the
        # recursive merge with sizes straddling the cutoff.
        import numpy as np

        rng = np.random.default_rng(11)
        for n in (65, 128, 129, 513):
            x = rng.integers(0, 12, size=n).tolist()
            y = rng.integers(0, 12, size=n).tolist()
            assert kendall_tau(x, y) == kendall_tau_reference(x, y)

    def test_large_input_matches_scipy(self):
        import numpy as np

        rng = np.random.default_rng(3)
        x = rng.integers(0, 40, size=4000)
        y = x + rng.integers(0, 25, size=4000)
        expected = scipy_stats.kendalltau(x, y).statistic
        assert kendall_tau(x.tolist(), y.tolist()) == pytest.approx(
            float(expected), abs=1e-12
        )


class TestKendallFromLists:
    def test_identical_lists(self):
        a = RankedList(["x", "y", "z"])
        assert kendall_from_lists(a, a) == pytest.approx(1.0)

    def test_tau_does_not_exceed_rho_magnitude_ordering(self):
        # Not a theorem, but for our moderately shuffled lists tau is
        # typically below rho; just sanity-check both are positive for
        # similar lists.
        from repro.stats.spearman import spearman_from_lists
        a = RankedList([f"s{i}" for i in range(30)])
        shuffled = list(a.sites)
        shuffled[0], shuffled[3] = shuffled[3], shuffled[0]
        shuffled[10], shuffled[15] = shuffled[15], shuffled[10]
        b = RankedList(shuffled)
        assert kendall_from_lists(a, b) > 0.8
        assert spearman_from_lists(a, b) > 0.8

    def test_disjoint_nan(self):
        assert math.isnan(kendall_from_lists(RankedList(["a"]), RankedList(["b"])))
