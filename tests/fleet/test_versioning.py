"""Version plumbing in the fleet: route keys and merged metrics."""

from __future__ import annotations

from repro.fleet.metrics import merge_snapshots
from repro.fleet.worker import payload_route_key

RANKINGS = ("v1", "rankings")


class TestVersionedRouteKeys:
    def test_version_prefixes_the_key(self):
        plain = payload_route_key(RANKINGS, {"country": "US"})
        keyed = payload_route_key(RANKINGS, {"country": "US"}, version=2)
        assert plain is not None and keyed is not None
        assert keyed == f"v2:{plain}"

    def test_keys_roll_over_across_versions(self):
        v1 = payload_route_key(RANKINGS, {"country": "US"}, version=1)
        v2 = payload_route_key(RANKINGS, {"country": "US"}, version=2)
        assert v1 != v2

    def test_as_of_param_pins_the_key_regardless_of_latest(self):
        # The same as_of request hashes identically before and after an
        # ingest bumps the worker's latest version: pinned relays stay
        # warm forever.
        before = payload_route_key(
            RANKINGS, {"country": "US", "as_of": "1"}, version=1
        )
        after = payload_route_key(
            RANKINGS, {"country": "US", "as_of": "1"}, version=2
        )
        assert before == after

    def test_unrouted_paths_stay_unrouted(self):
        assert payload_route_key(("v1", "healthz"), {}, version=2) is None


class TestMergedDatasetBlock:
    def _snap(self, version, months, pending=0):
        return {
            "endpoints": {},
            "counters": {},
            "requests_total": 0,
            "dataset": {
                "version": version,
                "months": months,
                "pending_slices": pending,
            },
        }

    def test_converged_fleet(self):
        merged = merge_snapshots([
            self._snap(2, ["2022-01", "2022-02"], pending=1),
            self._snap(2, ["2022-01", "2022-02"], pending=3),
        ])
        block = merged["dataset"]
        assert block["version"] == 2
        assert block["versions"] == [2]
        assert block["converged"] is True
        assert block["months"] == ["2022-01", "2022-02"]
        assert block["pending_slices"] == 4

    def test_mid_ingest_fleet_is_not_converged(self):
        # Versions must not sum: a worker still on v1 next to one on v2
        # reports the newest version and the spread, never "3".
        merged = merge_snapshots([
            self._snap(1, ["2022-01"]),
            self._snap(2, ["2022-01", "2022-02"]),
        ])
        block = merged["dataset"]
        assert block["version"] == 2
        assert block["versions"] == [1, 2]
        assert block["converged"] is False
        assert block["months"] == ["2022-01", "2022-02"]

    def test_versionless_snapshots_merge_without_a_block(self):
        merged = merge_snapshots([
            {"endpoints": {}, "counters": {}, "requests_total": 1},
        ])
        assert "dataset" not in merged
