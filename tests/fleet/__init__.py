"""Tests for the pre-forked fleet serving layer."""
