"""Consistent-hash ring: determinism, stability, balance."""

from __future__ import annotations

import pytest

from repro.fleet import HashRing


class TestValidation:
    def test_size_must_be_positive(self):
        with pytest.raises(ValueError, match="ring size"):
            HashRing(0)

    def test_replicas_must_be_positive(self):
        with pytest.raises(ValueError, match="replicas"):
            HashRing(2, replicas=0)


class TestOwnership:
    def test_deterministic_across_instances(self):
        """Two rings built independently agree on every key — the
        property worker processes rely on (no coordination)."""
        keys = [f"v1/rankings?country=C{i}&top=50" for i in range(500)]
        a, b = HashRing(4), HashRing(4)
        assert [a.owner(k) for k in keys] == [b.owner(k) for k in keys]

    def test_owner_in_range(self):
        ring = HashRing(3)
        for i in range(200):
            assert 0 <= ring.owner(f"key-{i}") < 3

    def test_single_worker_owns_everything(self):
        ring = HashRing(1)
        assert {ring.owner(f"key-{i}") for i in range(100)} == {0}

    def test_stable_under_growth(self):
        """Adding a worker only moves keys *to* the new worker — keys
        that stay on an old worker keep their old owner."""
        keys = [f"key-{i}" for i in range(1000)]
        small, big = HashRing(3), HashRing(4)
        moved = 0
        for key in keys:
            before, after = small.owner(key), big.owner(key)
            if after != before:
                assert after == 3, (key, before, after)
                moved += 1
        # ~1/4 of the key space should move, never the majority.
        assert 0 < moved < len(keys) // 2


class TestBalance:
    def test_spread_sums_to_key_count(self):
        ring = HashRing(4)
        keys = [f"key-{i}" for i in range(1000)]
        spread = ring.spread(keys)
        assert sum(spread.values()) == len(keys)
        assert set(spread) == {0, 1, 2, 3}

    def test_no_worker_starved_or_overloaded(self):
        """With 64 virtual points per worker, each worker's share of a
        uniform key space stays within 2x of fair."""
        ring = HashRing(4)
        spread = ring.spread([f"site:{i}.example" for i in range(4000)])
        fair = 1000
        for index, count in spread.items():
            assert fair / 2 < count < fair * 2, spread
