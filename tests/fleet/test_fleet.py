"""Integration tests: a real pre-forked fleet over a columnar dataset.

These fork actual worker processes around a shared listening socket and
drive them over HTTP, so they cover the properties that matter end to
end: byte-identity with single-process serving, once-fleet-wide
rendering, merged metrics, crash restart, graceful stop + rebind, and
mmap page sharing.
"""

from __future__ import annotations

import json
import os
import signal
import sys
import time
import urllib.error
import urllib.request

import pytest

import repro
from repro.api import _build_service
from repro.fleet import FleetSupervisor

pytestmark = pytest.mark.skipif(
    not hasattr(os, "fork"), reason="fleet serving needs fork()"
)


def _get(url: str, timeout: float = 10.0) -> tuple[int, bytes]:
    """One GET on a fresh connection (4xx/5xx bodies returned, not raised)."""
    try:
        with urllib.request.urlopen(url, timeout=timeout) as resp:
            return resp.status, resp.read()
    except urllib.error.HTTPError as err:
        return err.code, err.read()


@pytest.fixture(scope="module")
def columnar_data(tmp_path_factory):
    out = tmp_path_factory.mktemp("fleet") / "data"
    repro.generate(
        small=True, countries=("US", "KR"), out=str(out), format="columnar"
    )
    return str(out)


@pytest.fixture(scope="module")
def fleet(columnar_data):
    supervisor = FleetSupervisor(
        columnar_data, port=0, workers=2, small=True, drain_timeout=5.0
    )
    supervisor.start()
    yield supervisor
    supervisor.stop()


@pytest.fixture(scope="module")
def reference_service(columnar_data):
    """Single-process ground truth over the same dataset."""
    return _build_service(columnar_data, small=True)


class TestByteIdentity:
    def test_fleet_payloads_match_single_process(self, fleet, reference_service):
        # healthz first: it reports pending (not yet materialised)
        # slices, so it must be compared before any rankings request
        # materialises a slice on one worker but not the other.
        cases = [
            ("/v1/healthz",
             lambda s: s.healthz()),
            ("/v1/analyses",
             lambda s: s.analyses()),
            ("/v1/distributions",
             lambda s: s.distribution()),
            ("/v1/rankings?country=US&top=5",
             lambda s: s.rankings("US", top=5)),
            ("/v1/rankings?country=KR&top=3&platform=android",
             lambda s: s.rankings("KR", top=3, platform="android")),
        ]
        for path, render in cases:
            status, body = _get(fleet.url + path)
            assert status == 200, (path, body)
            assert body == render(reference_service), path

    def test_repeated_requests_are_byte_identical(self, fleet):
        path = fleet.url + "/v1/rankings?country=US&top=10"
        bodies = {_get(path)[1] for _ in range(6)}
        assert len(bodies) == 1

    def test_errors_relay_with_choices(self, fleet):
        status, body = _get(fleet.url + "/v1/rankings?country=XX")
        assert status == 404
        payload = json.loads(body)
        assert set(payload["choices"]) == {"US", "KR"}


class TestFleetMetrics:
    def _metrics(self, fleet) -> dict:
        return json.loads(_get(fleet.url + "/v1/metrics")[1])

    def test_merged_shape_and_fleet_block(self, fleet):
        _get(fleet.url + "/v1/rankings?country=US&top=5")
        merged = self._metrics(fleet)
        assert {"endpoints", "counters", "requests_total", "cache"} <= set(merged)
        block = merged["fleet"]
        assert block["size"] == 2
        assert block["worker"] in (0, 1)
        assert block["unreachable"] == []
        assert set(block["workers"]) == {"0", "1"}
        # Per-worker snapshots are the single-process shape, and the
        # merged totals are exactly their sum.
        for snap in block["workers"].values():
            assert "requests_total" in snap and "cache" in snap
        assert merged["requests_total"] == sum(
            snap["requests_total"] for snap in block["workers"].values()
        )

    def test_unique_payload_renders_at_most_once_per_worker(self, fleet):
        """10 hits on one fresh key cost <= 2 fleet-wide cache misses
        (owner render + at most one relayed copy), the rest are hits."""
        before = self._metrics(fleet)["cache"]
        path = fleet.url + "/v1/rankings?country=KR&top=7"
        bodies = {_get(path)[1] for _ in range(10)}
        assert len(bodies) == 1
        after = self._metrics(fleet)["cache"]
        misses = after["misses"] - before["misses"]
        hits = after["hits"] - before["hits"]
        assert 1 <= misses <= 2, (before, after)
        assert hits >= 10 - misses

    def test_distinct_keys_get_proxied_to_owners(self, fleet):
        """With enough distinct keys, some must land on a non-owner and
        cross the ring (P(all local) ~ 2^-16)."""
        for top in range(11, 27):
            _get(fleet.url + f"/v1/rankings?country=US&top={top}")
        merged = self._metrics(fleet)
        assert merged["counters"].get("fleet_proxied", 0) >= 1


@pytest.mark.skipif(sys.platform != "linux", reason="/proc maps inspection")
class TestPageSharing:
    def test_workers_mmap_the_same_columnar_file(self, fleet):
        """Every worker's address space maps lists.bin — the dataset is
        shared page cache, not N private copies."""
        pids = fleet.worker_pids()
        assert len(pids) == 2
        for pid in pids:
            maps = open(f"/proc/{pid}/maps").read()
            assert "lists.bin" in maps, f"worker {pid} did not mmap the dataset"


class TestLifecycle:
    def test_crashed_worker_restarts_and_serving_survives(self, columnar_data):
        with FleetSupervisor(
            columnar_data, port=0, workers=2, small=True,
            drain_timeout=5.0, restart_backoff=0.05,
        ) as fleet:
            reference = _get(fleet.url + "/v1/rankings?country=US&top=4")[1]
            victim = fleet.worker_pids()[0]
            os.kill(victim, signal.SIGKILL)
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                pids = fleet.worker_pids()
                if len(pids) == 2 and victim not in pids:
                    break
                time.sleep(0.05)
            assert len(fleet.worker_pids()) == 2
            assert fleet.restarts.value >= 1
            status, body = _get(fleet.url + "/v1/rankings?country=US&top=4")
            assert status == 200 and body == reference
            merged = json.loads(_get(fleet.url + "/v1/metrics")[1])
            assert merged["fleet"]["restarts_total"] >= 1

    def test_graceful_stop_drains_and_port_rebinds(self, columnar_data):
        fleet = FleetSupervisor(
            columnar_data, port=0, workers=2, small=True, drain_timeout=5.0
        ).start()
        port = int(fleet.url.rsplit(":", 1)[1])
        assert _get(fleet.url + "/v1/healthz")[0] == 200
        started = time.monotonic()
        fleet.stop()
        assert time.monotonic() - started < fleet.spec.drain_timeout + 5
        # SIGTERM drain, not SIGKILL: every worker exited cleanly.
        assert [proc.exitcode for proc in fleet._procs] == [0, 0]
        fleet.stop()  # idempotent

        rebound = FleetSupervisor(
            columnar_data, port=port, workers=2, small=True, drain_timeout=5.0
        ).start()
        try:
            assert _get(rebound.url + "/v1/healthz")[0] == 200
        finally:
            rebound.stop()

    def test_workers_must_be_positive(self, columnar_data):
        with pytest.raises(ValueError, match="workers"):
            FleetSupervisor(columnar_data, workers=0)

    def test_serve_facade_rejects_trace_with_fleet(self, columnar_data):
        with pytest.raises(ValueError, match="trace"):
            repro.serve(columnar_data, workers=2, trace="t.jsonl")
