"""The Zipf load-test harness, driven against an in-thread server."""

from __future__ import annotations

import json
import math
import os
import threading

import pytest

from repro.core import Metric, Platform, REFERENCE_MONTH
from repro.fleet import SLO, LoadTestError, discover_mix, run_loadtest
from repro.fleet.loadtest import _percentile, fit_zipf_from_anchors
from repro.service import QueryService, create_server


@pytest.fixture(scope="module")
def server_url(generator, tmp_path_factory):
    dataset = generator.generate(
        countries=("US", "KR"),
        platforms=Platform.studied(),
        metrics=Metric.studied(),
        months=(REFERENCE_MONTH,),
    )
    service = QueryService(
        dataset,
        store=tmp_path_factory.mktemp("lt") / "artifacts",
        config=generator.config,
    )
    server = create_server(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server.url
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


class TestZipfFit:
    def test_recovers_known_exponent(self):
        """Cumulative anchors generated from an exact Zipf(1.0) curve
        fit back to an exponent near 1.0."""
        n = 100_000
        s = 1.0
        harmonic = sum(1.0 / r ** s for r in range(1, n + 1))
        cumulative = 0.0
        anchors = []
        checkpoints = {1, 10, 100, 1_000, 10_000, 100_000}
        for rank in range(1, n + 1):
            cumulative += (1.0 / rank ** s) / harmonic
            if rank in checkpoints:
                anchors.append([rank, cumulative])
        fitted = fit_zipf_from_anchors(anchors)
        assert math.isclose(fitted, s, abs_tol=0.15), fitted

    def test_degenerate_anchors_fall_back(self):
        assert fit_zipf_from_anchors([]) == 1.0
        assert fit_zipf_from_anchors([[1, 0.5]]) == 1.0
        assert fit_zipf_from_anchors([[1, 0.5], [1, 0.5]]) == 1.0


class TestPercentile:
    def test_nearest_rank(self):
        sample = sorted(float(v) for v in range(1, 101))
        assert _percentile(sample, 50) == 50.0
        assert _percentile(sample, 95) == 95.0
        assert _percentile(sample, 99) == 99.0
        assert _percentile(sample, 100) == 100.0

    def test_empty_is_zero(self):
        assert _percentile([], 99) == 0.0


class TestDiscovery:
    def test_mix_reflects_the_dataset(self, server_url):
        mix = discover_mix(server_url, top_sites=20)
        assert set(mix.countries) == {"US", "KR"}
        assert len(mix.sites) == 20
        assert 0.3 <= mix.zipf_s <= 2.5
        assert len(mix.entries) == len(mix.weights)
        # Shares are normalised per endpoint, so total weight is ~1.
        assert math.isclose(sum(mix.weights), 1.0, rel_tol=0.05)

    def test_unreachable_server(self):
        with pytest.raises(LoadTestError, match="cannot reach"):
            discover_mix("http://127.0.0.1:1", timeout=0.5)


class TestRun:
    def test_report_shape_and_bench_json(self, server_url, tmp_path):
        report = run_loadtest(
            server_url, requests=60, concurrency=4, seed=11,
            slo=SLO(error_rate=0.0, p99_ms=60_000),
        )
        assert report.requests == 60
        assert report.errors == 0
        assert report.ok, report.violations()
        assert report.throughput_rps > 0
        assert set(report.endpoints) <= {
            "rankings", "site", "distribution", "analyses", "healthz",
        }
        assert "rankings" in report.endpoints

        out = report.write_bench_json(tmp_path / "BENCH_service.json")
        payload = json.loads(out.read_text())
        assert payload["requests"] == 60
        assert payload["ok"] is True
        assert payload["slo"]["error_rate"] == 0.0
        for endpoint in payload["endpoints"].values():
            assert {"p50_ms", "p95_ms", "p99_ms", "requests"} <= set(endpoint)
        assert out.read_text().endswith("\n")

    def test_deterministic_schedule(self, server_url):
        """Same seed, same mix of endpoint counts."""
        a = run_loadtest(server_url, requests=40, concurrency=2, seed=5)
        b = run_loadtest(server_url, requests=40, concurrency=2, seed=5)
        assert (
            {k: v.requests for k, v in a.endpoints.items()}
            == {k: v.requests for k, v in b.endpoints.items()}
        )

    def test_slo_violation_detected(self, server_url):
        report = run_loadtest(
            server_url, requests=20, concurrency=2, seed=3,
            slo=SLO(min_rps=1e9),
        )
        assert not report.ok
        assert any("throughput" in v for v in report.violations())

    def test_baseline_speedup_gate(self, server_url):
        report = run_loadtest(
            server_url, requests=20, concurrency=2, seed=3,
            baseline={"throughput_rps": 1e9}, min_speedup=2.0,
        )
        assert report.baseline["speedup"] < 1
        assert any("speedup" in v for v in report.violations())
        # Against a trivially slow baseline the same gate passes.
        report = run_loadtest(
            server_url, requests=20, concurrency=2, seed=3,
            baseline={"throughput_rps": 0.001}, min_speedup=2.0,
        )
        assert report.ok, report.violations()

    def test_concurrency_validated(self, server_url):
        with pytest.raises(ValueError, match="concurrency"):
            run_loadtest(server_url, requests=1, concurrency=0)

    def test_client_procs_validated(self, server_url):
        with pytest.raises(ValueError, match="client_procs"):
            run_loadtest(server_url, requests=1, client_procs=0)

    @pytest.mark.skipif(not hasattr(os, "fork"), reason="needs fork()")
    def test_multiprocess_client(self, server_url):
        """Forked load generators split the same seeded schedule."""
        report = run_loadtest(
            server_url, requests=40, concurrency=4, client_procs=2,
            seed=7, slo=SLO(error_rate=0.0),
        )
        assert report.requests == 40
        assert report.errors == 0
        assert report.ok, report.violations()
        assert report.client_procs == 2
        assert report.to_payload()["client_procs"] == 2
        # The endpoint mix matches a single-process client with the
        # same seed: the schedule is split, never resampled.
        inline = run_loadtest(server_url, requests=40, concurrency=4, seed=7)
        assert (
            {k: v.requests for k, v in report.endpoints.items()}
            == {k: v.requests for k, v in inline.endpoints.items()}
        )
