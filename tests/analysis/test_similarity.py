"""Tests for country similarity (Figures 10, 12)."""

import numpy as np
import pytest

from repro.analysis.similarity import (
    intersection_curves,
    pairwise_intersections,
    rbo_matrix_for,
    weighted_rbo_matrix,
)
from repro.core import Metric, Platform, REFERENCE_MONTH
from repro.core.errors import AnalysisError

SUBSET = ("US", "GB", "CA", "AU", "NZ", "FR", "BE", "NL", "JP", "KR",
          "MX", "AR", "CL", "CO", "BR", "DZ", "MA", "TN", "EG", "TW", "HK")


@pytest.fixture(scope="module")
def matrix(reference_dataset):
    return rbo_matrix_for(
        reference_dataset, Platform.WINDOWS, Metric.PAGE_LOADS,
        REFERENCE_MONTH, depth=1_500, countries=SUBSET,
    )


class TestMatrix:
    def test_symmetric_with_unit_diagonal(self, matrix):
        assert np.allclose(matrix.values, matrix.values.T)
        assert np.allclose(np.diag(matrix.values), 1.0)

    def test_values_bounded(self, matrix):
        assert np.all(matrix.values >= 0.0)
        assert np.all(matrix.values <= 1.0 + 1e-9)

    def test_pair_lookup(self, matrix):
        assert matrix.pair("US", "GB") == matrix.pair("GB", "US")

    def test_shape_validation(self):
        from repro.analysis.similarity import SimilarityMatrix
        with pytest.raises(ValueError):
            SimilarityMatrix(("A", "B"), np.zeros((3, 3)))


class TestUnknownCountryErrors:
    """Lookups on a missing country raise AnalysisError naming it and
    the valid choices — not a bare ValueError from ``tuple.index``."""

    def test_pair(self, matrix):
        with pytest.raises(AnalysisError, match=r"unknown country 'XX'") as exc:
            matrix.pair("US", "XX")
        assert "valid choices" in str(exc.value)
        assert "GB" in str(exc.value)

    def test_most_similar_to(self, matrix):
        with pytest.raises(AnalysisError, match=r"unknown country 'ZZ'"):
            matrix.most_similar_to("ZZ")

    def test_mean_similarity(self, matrix):
        with pytest.raises(AnalysisError, match=r"unknown country 'QQ'"):
            matrix.mean_similarity("QQ")


class TestGeographicStructure:
    """Section 5.3.1's qualitative patterns."""

    def test_north_africa_more_similar_than_cross_region(self, matrix):
        within = matrix.pair("DZ", "MA")
        across = matrix.pair("DZ", "JP")
        assert within > across

    def test_spanish_america_cluster(self, matrix):
        within = np.mean([matrix.pair("MX", "AR"), matrix.pair("AR", "CL"),
                          matrix.pair("CL", "CO")])
        across = np.mean([matrix.pair("MX", "KR"), matrix.pair("AR", "JP")])
        assert within > across

    def test_brazil_less_similar_to_spanish_cluster_than_members(self, matrix):
        member = matrix.pair("AR", "CL")
        brazil = matrix.pair("AR", "BR")
        assert member > brazil

    def test_anglosphere_spans_continents(self, matrix):
        assert matrix.pair("US", "AU") > matrix.pair("US", "JP")
        assert matrix.pair("GB", "NZ") > matrix.pair("GB", "KR")

    def test_korea_is_an_outlier(self, matrix):
        kr_mean = matrix.mean_similarity("KR")
        others = [matrix.mean_similarity(c) for c in SUBSET if c not in ("KR", "JP")]
        assert kr_mean < np.median(others)

    def test_taiwan_hong_kong_tight(self, matrix):
        assert matrix.pair("TW", "HK") > matrix.pair("TW", "FR")

    def test_most_similar_to_helper(self, matrix):
        closest = [c for c, _ in matrix.most_similar_to("DZ", k=3)]
        assert set(closest) & {"MA", "TN", "EG"}


class TestIntersectionCurves:
    def test_pairwise_curve_structure(self, reference_dataset):
        lists = reference_dataset.select(
            Platform.WINDOWS, Metric.PAGE_LOADS, REFERENCE_MONTH, SUBSET
        )
        curve = pairwise_intersections(lists, bucket=100)
        n = len(SUBSET)
        assert curve.n_pairs == n * (n - 1) // 2
        assert np.all(np.diff(curve.sorted_values) <= 1e-12)
        assert curve.cumulative[-1] == pytest.approx(curve.sorted_values.sum())

    def test_heads_more_similar_than_tails(self, reference_dataset):
        curves = intersection_curves(
            reference_dataset, Platform.WINDOWS, Metric.PAGE_LOADS,
            REFERENCE_MONTH, buckets=(10, 100, 1_500), countries=SUBSET,
        )
        by_bucket = {c.bucket: c.mean_intersection for c in curves}
        # Figure 12: "Countries' popular sites are more similar among the
        # topmost ranks than among the long tail."
        assert by_bucket[10] > by_bucket[100] > by_bucket[1_500]

    def test_requires_two_countries(self, reference_dataset):
        with pytest.raises(ValueError):
            intersection_curves(
                reference_dataset, Platform.WINDOWS, Metric.PAGE_LOADS,
                REFERENCE_MONTH, countries=("US",),
            )
