"""Tests for top-10 composition (Section 4.2.1 / Table 4)."""

import pytest

from repro.analysis.top10 import (
    category_presence,
    single_country_sites,
    tag_presence,
    union_of_top_sites,
    windows_only_top_sites,
)
from repro.core import Metric, Platform, REFERENCE_MONTH


@pytest.fixture(scope="module")
def lists(reference_dataset):
    return reference_dataset.select(
        Platform.WINDOWS, Metric.PAGE_LOADS, REFERENCE_MONTH
    )


@pytest.fixture(scope="module")
def presence(lists, labels):
    return category_presence(lists, labels, top_k=10)


@pytest.fixture(scope="module")
def tags_map(generator):
    uni = generator.universe
    return {uni.canonical[uid]: tags for uid, tags in uni.tags.items()}


class TestCategoryPresence:
    def test_search_engine_in_every_top10(self, presence):
        # "all 45 countries in our study have at least one search engine
        # ... in the top ten".
        assert presence["Search Engines"].n_countries == 45

    def test_video_platform_in_every_top10(self, presence):
        assert presence["Video Streaming"].n_countries == 45

    def test_social_networks_nearly_everywhere(self, presence):
        assert presence["Social Networks"].n_countries >= 40

    def test_chat_or_messaging_widespread(self, presence):
        assert presence["Chat & Messaging"].n_countries >= 25

    def test_presence_records_driving_sites(self, presence, generator):
        assert generator.universe.canonical_of("google") in (
            presence["Search Engines"].sites
        )


class TestTagPresence:
    def test_classifieds_are_national(self, lists, tags_map):
        tags = tag_presence(lists, tags_map, top_k=10)
        if "classifieds" in tags:
            exclusive = single_country_sites(tags["classifieds"], lists, top_k=10)
            # Paper: 15 of 17 classified-ads domains are top-10 in
            # exactly one country.
            assert len(exclusive) >= 0.6 * tags["classifieds"].n_sites

    def test_news_tag_spans_many_countries(self, lists, tags_map):
        tags = tag_presence(lists, tags_map, top_k=20)
        assert "news" in tags
        assert tags["news"].n_countries >= 20

    def test_champion_tags_visible_in_top20(self, lists, tags_map):
        tags = tag_presence(lists, tags_map, top_k=20)
        assert "champion" in tags
        assert tags["champion"].n_countries >= 40


class TestWindowsOnly:
    def test_windows_exclusives_mostly_have_apps(self, reference_dataset, generator):
        uni = generator.universe
        has_app = {
            uni.canonical[uid]: bool(uni.has_android_app[uid])
            for uid in range(uni.n_sites)
        }
        exclusives = windows_only_top_sites(
            reference_dataset, REFERENCE_MONTH, has_app, top_k=10
        )
        assert len(exclusives.sites) > 0
        # Paper: 93/114 (82 %) of such sites have a dedicated Android
        # app.  Our named roster drives this; procedural champions
        # dilute it, so the band is loose.
        named_exclusives = [
            s for s in exclusives.sites
            if s in {uni.canonical[uid] for uid in uni.named_uid.values()}
        ]
        if named_exclusives:
            with_app = [s for s in named_exclusives if has_app.get(s)]
            assert len(with_app) / len(named_exclusives) > 0.5


class TestUnion:
    def test_union_spans_breakdowns(self, reference_dataset):
        union = union_of_top_sites(reference_dataset, REFERENCE_MONTH, top_k=10)
        # 45 countries x 2 platforms x 2 metrics, heavily overlapping:
        # on the order of a few hundred unique sites (paper: 469 unique
        # domains after merging).
        assert 100 <= len(union) <= 1_000
