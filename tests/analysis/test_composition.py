"""Tests for category composition (Figure 2 / Section 4.2.2)."""

import pytest

from repro.analysis.composition import (
    composition_panel,
    dominant_category,
    figure2_panels,
)
from repro.core import Metric, Platform, REFERENCE_MONTH


class TestPanels:
    def test_shares_sum_to_one(self, reference_dataset, labels):
        panel = composition_panel(
            reference_dataset, labels, Platform.WINDOWS, Metric.PAGE_LOADS,
            REFERENCE_MONTH, top_n=1_000, perspective="domains",
        )
        assert sum(panel.shares.values()) == pytest.approx(1.0, abs=1e-6)

    def test_per_country_covers_45(self, reference_dataset, labels):
        panel = composition_panel(
            reference_dataset, labels, Platform.WINDOWS, Metric.PAGE_LOADS,
            REFERENCE_MONTH, top_n=1_000,
        )
        assert len(panel.per_country) == 45

    def test_invalid_perspective(self, reference_dataset, labels):
        with pytest.raises(ValueError):
            composition_panel(
                reference_dataset, labels, Platform.WINDOWS, Metric.PAGE_LOADS,
                REFERENCE_MONTH, 100, perspective="magic",
            )

    def test_figure2_panel_grid(self, reference_dataset, labels):
        panels = figure2_panels(
            reference_dataset, labels, REFERENCE_MONTH, top_ns=(100, 1_000),
            countries=("US", "BR", "JP"),
        )
        # 2 platforms x 2 metrics x 2 top-Ns x 2 perspectives
        assert len(panels) == 16


class TestPaperShape:
    """Headline composition claims of Section 4.2.2."""

    def test_search_engines_capture_plurality_of_page_loads(
        self, reference_dataset, labels
    ):
        panel = composition_panel(
            reference_dataset, labels, Platform.WINDOWS, Metric.PAGE_LOADS,
            REFERENCE_MONTH, top_n=1_500, perspective="traffic",
        )
        assert dominant_category(panel) == "Search Engines"

    def test_video_streaming_dominates_windows_time(self, reference_dataset, labels):
        panel = composition_panel(
            reference_dataset, labels, Platform.WINDOWS, Metric.TIME_ON_PAGE,
            REFERENCE_MONTH, top_n=1_500, perspective="traffic",
        )
        assert dominant_category(panel) == "Video Streaming"
        # "33% of time spent on top-10K websites" — generous band here.
        assert panel.shares["Video Streaming"] > 0.20

    def test_adult_content_leads_mobile_time(self, reference_dataset, labels):
        panel = composition_panel(
            reference_dataset, labels, Platform.ANDROID, Metric.TIME_ON_PAGE,
            REFERENCE_MONTH, top_n=1_500, perspective="traffic",
        )
        top3 = [c for c, _ in panel.top_categories(3)]
        assert "Pornography" in top3

    def test_search_loads_share_exceeds_search_time_share(
        self, reference_dataset, labels
    ):
        loads = composition_panel(
            reference_dataset, labels, Platform.WINDOWS, Metric.PAGE_LOADS,
            REFERENCE_MONTH, top_n=1_500, perspective="traffic",
        )
        time = composition_panel(
            reference_dataset, labels, Platform.WINDOWS, Metric.TIME_ON_PAGE,
            REFERENCE_MONTH, top_n=1_500, perspective="traffic",
        )
        assert loads.shares["Search Engines"] > time.shares["Search Engines"]

    def test_counting_skews_toward_tail_categories(self, reference_dataset, labels):
        by_count = composition_panel(
            reference_dataset, labels, Platform.WINDOWS, Metric.PAGE_LOADS,
            REFERENCE_MONTH, top_n=1_500, perspective="domains",
        )
        by_traffic = composition_panel(
            reference_dataset, labels, Platform.WINDOWS, Metric.PAGE_LOADS,
            REFERENCE_MONTH, top_n=1_500, perspective="traffic",
        )
        # Search engines: few sites, most traffic.
        assert by_traffic.shares["Search Engines"] > by_count.shares.get("Search Engines", 0.0)
        # Business: many sites, little traffic.
        assert by_count.shares["Business"] > by_traffic.shares.get("Business", 0.0)

    def test_dominant_category_respects_exclusions(self, reference_dataset, labels):
        panel = composition_panel(
            reference_dataset, labels, Platform.WINDOWS, Metric.PAGE_LOADS,
            REFERENCE_MONTH, top_n=1_500, perspective="domains",
        )
        with pytest.raises(ValueError):
            dominant_category(panel, exclude=tuple(panel.shares))
