"""Tests for temporal stability (Section 4.5)."""

import pytest

from repro.analysis.temporal import (
    adjacent_month_series,
    anchored_series,
    category_share_over_months,
    december_anomaly,
    month_pair_similarity,
)
from repro.core import Metric, Month, Platform

DEC = Month(2021, 12)


class TestMonthPairs:
    def test_pair_similarity_structure(self, monthly_dataset):
        sim = month_pair_similarity(
            monthly_dataset, Platform.WINDOWS, Metric.PAGE_LOADS,
            Month(2022, 1), Month(2022, 2), bucket=1_500,
        )
        assert 0.0 < sim.intersection.median <= 1.0
        assert -1.0 <= sim.spearman.median <= 1.0

    def test_adjacent_series_covers_all_pairs(self, monthly_dataset):
        series = adjacent_month_series(
            monthly_dataset, Platform.WINDOWS, Metric.PAGE_LOADS, bucket=1_500
        )
        assert len(series) == 5
        assert series[0].month_a == Month(2021, 9)
        assert series[-1].month_b == Month(2022, 2)

    def test_adjacent_months_strongly_similar(self, monthly_dataset):
        series = adjacent_month_series(
            monthly_dataset, Platform.WINDOWS, Metric.PAGE_LOADS, bucket=1_500
        )
        for pair in series:
            assert pair.intersection.median > 0.7
            assert pair.spearman.median > 0.7

    def test_head_more_stable_than_tail(self, monthly_dataset):
        head = month_pair_similarity(
            monthly_dataset, Platform.WINDOWS, Metric.PAGE_LOADS,
            Month(2022, 1), Month(2022, 2), bucket=20,
        )
        tail = month_pair_similarity(
            monthly_dataset, Platform.WINDOWS, Metric.PAGE_LOADS,
            Month(2022, 1), Month(2022, 2), bucket=1_500,
        )
        assert head.spearman.median >= tail.spearman.median

    def test_missing_month_raises(self, monthly_dataset):
        with pytest.raises(ValueError):
            month_pair_similarity(
                monthly_dataset, Platform.WINDOWS, Metric.PAGE_LOADS,
                Month(2022, 1), Month(2023, 1), bucket=100,
            )


class TestAnchoredDecay:
    def test_similarity_decays_from_september(self, monthly_dataset):
        series = anchored_series(
            monthly_dataset, Platform.WINDOWS, Metric.PAGE_LOADS, bucket=1_500
        )
        assert len(series) == 5
        # Similarity to September should not increase over time
        # (December's transient can dip below trend, so compare the
        # first non-December step against the last).
        non_dec = [s for s in series if not s.month_b.is_december]
        assert non_dec[0].intersection.median > non_dec[-1].intersection.median


class TestDecember:
    def test_december_is_the_anomalous_month(self, monthly_dataset):
        anomaly = december_anomaly(
            monthly_dataset, Platform.WINDOWS, Metric.PAGE_LOADS, bucket=1_500
        )
        assert anomaly.is_anomalous
        assert anomaly.gap > 0.01

    def test_january_february_most_similar_pair(self, monthly_dataset):
        series = adjacent_month_series(
            monthly_dataset, Platform.WINDOWS, Metric.PAGE_LOADS, bucket=1_500
        )
        by_pair = {(s.month_a, s.month_b): s.intersection.median for s in series}
        jan_feb = by_pair[(Month(2022, 1), Month(2022, 2))]
        dec_jan = by_pair[(DEC, Month(2022, 1))]
        nov_dec = by_pair[(Month(2021, 11), DEC)]
        assert jan_feb > dec_jan
        assert jan_feb > nov_dec


class TestCategoryDrift:
    def test_ecommerce_rises_in_december(self, monthly_dataset, labels):
        shares = category_share_over_months(
            monthly_dataset, labels, Platform.WINDOWS, Metric.PAGE_LOADS,
            "Ecommerce", top_n=1_500,
        )
        november = shares[Month(2021, 11)]
        december = shares[DEC]
        january = shares[Month(2022, 1)]
        assert december > november
        assert december > january

    def test_education_drops_in_december(self, monthly_dataset, labels):
        shares = category_share_over_months(
            monthly_dataset, labels, Platform.WINDOWS, Metric.PAGE_LOADS,
            "Educational Institutions", top_n=1_500,
        )
        assert shares[DEC] < shares[Month(2021, 11)]
        assert shares[DEC] < shares[Month(2022, 1)]

    def test_stable_category_stays_stable(self, monthly_dataset, labels):
        shares = category_share_over_months(
            monthly_dataset, labels, Platform.WINDOWS, Metric.PAGE_LOADS,
            "Technology", top_n=1_500,
        )
        values = list(shares.values())
        spread = max(values) - min(values)
        assert spread < 0.25 * max(values)
