"""Tests for category prevalence by rank (Figure 3 / Section 4.2.3)."""

import pytest

from repro.analysis.prevalence import (
    head_tail_ratio,
    prevalence_by_rank,
)
from repro.core import Metric, Platform, REFERENCE_MONTH

THRESHOLDS = (10, 30, 50, 100, 300, 1_000, 1_500)


@pytest.fixture(scope="module")
def curves(reference_dataset, labels):
    return {
        c.category: c
        for c in prevalence_by_rank(
            reference_dataset, labels, Platform.WINDOWS, Metric.PAGE_LOADS,
            REFERENCE_MONTH,
            categories=("Video Streaming", "News & Media", "Business",
                        "Technology", "Pornography", "Ecommerce"),
            thresholds=THRESHOLDS,
        )
    }


class TestStructure:
    def test_one_curve_per_category(self, curves):
        assert len(curves) == 6

    def test_points_cover_thresholds(self, curves):
        for curve in curves.values():
            assert tuple(p.threshold for p in curve.points) == THRESHOLDS

    def test_shares_are_fractions(self, curves):
        for curve in curves.values():
            for point in curve.points:
                assert 0.0 <= point.stats.q25 <= point.stats.median <= point.stats.q75 <= 1.0

    def test_missing_threshold_raises(self, curves):
        with pytest.raises(KeyError):
            curves["Business"].median_at(123)


class TestPaperShape:
    def test_business_rises_into_the_tail(self, curves):
        # Paper: Business rises from ~3 % of top-30 to ~8 % of top-10K.
        # The named Business anchors (office) sit in the head, so compare
        # from top-100 where they are diluted.
        business = curves["Business"]
        assert business.median_at(1_500) > business.median_at(100)
        assert head_tail_ratio(business, head=100, tail=1_500) < 1.0

    def test_news_peaks_near_the_head_then_declines(self, curves):
        news = curves["News & Media"]
        peak = max(p.stats.median for p in news.points if p.threshold <= 100)
        assert peak > news.median_at(1_500)

    def test_time_metric_video_streaming_head_heavy(self, reference_dataset, labels):
        curves_time = {
            c.category: c
            for c in prevalence_by_rank(
                reference_dataset, labels, Platform.WINDOWS, Metric.TIME_ON_PAGE,
                REFERENCE_MONTH, categories=("Video Streaming",),
                thresholds=THRESHOLDS,
            )
        }
        video = curves_time["Video Streaming"]
        assert head_tail_ratio(video, head=10, tail=1_500) > 1.5

    def test_adult_overrepresented_at_mobile_head(self, reference_dataset, labels):
        mobile = {
            c.category: c
            for c in prevalence_by_rank(
                reference_dataset, labels, Platform.ANDROID, Metric.PAGE_LOADS,
                REFERENCE_MONTH, categories=("Pornography",), thresholds=THRESHOLDS,
            )
        }
        desktop_curves = {
            c.category: c
            for c in prevalence_by_rank(
                reference_dataset, labels, Platform.WINDOWS, Metric.PAGE_LOADS,
                REFERENCE_MONTH, categories=("Pornography",), thresholds=THRESHOLDS,
            )
        }
        assert (
            mobile["Pornography"].median_at(50)
            > desktop_curves["Pornography"].median_at(50)
        )
