"""Tests for endemicity scoring (Sections 5.1–5.2)."""

import math

import numpy as np
import pytest

from repro.analysis.endemicity import (
    ALL_SHAPES,
    MISSING_RANK,
    PopularityCurve,
    category_split,
    classify_shape,
    exclusivity_fraction,
    popularity_curves,
    score_endemicity,
)
from repro.core import Metric, Platform, REFERENCE_MONTH


@pytest.fixture(scope="module")
def lists(reference_dataset):
    return reference_dataset.select(
        Platform.WINDOWS, Metric.PAGE_LOADS, REFERENCE_MONTH
    )


@pytest.fixture(scope="module")
def endemicity(lists):
    return score_endemicity(lists, eligible_rank=200)


class TestPopularityCurve:
    def test_score_zero_for_uniform_ranks(self):
        curve = PopularityCurve("x", tuple([7] * 45))
        assert curve.endemicity_score() == pytest.approx(0.0)

    def test_score_formula(self):
        curve = PopularityCurve("x", (1, 10, 100))
        assert curve.endemicity_score() == pytest.approx(
            math.log10(10) + math.log10(100)
        )

    def test_upper_bound_at_180_scale(self):
        # Best rank 1, absent everywhere else, 45 countries:
        # 44 * log10(10001) ≈ 176 — the paper's "0–180" scale.
        curve = PopularityCurve("x", tuple([1] + [MISSING_RANK] * 44))
        assert curve.upper_bound() == pytest.approx(44 * math.log10(MISSING_RANK))
        assert curve.endemicity_score() == pytest.approx(curve.upper_bound())
        assert 170 < curve.upper_bound() < 180

    def test_distance_from_bound_zero_for_pure_endemic(self):
        curve = PopularityCurve("x", tuple([5] + [MISSING_RANK] * 44))
        assert curve.distance_from_bound() == pytest.approx(0.0)

    def test_global_site_far_from_bound(self):
        flat = PopularityCurve("g", tuple([3] * 45))
        assert flat.distance_from_bound() == pytest.approx(flat.upper_bound())

    def test_ranks_must_be_sorted(self):
        with pytest.raises(ValueError):
            PopularityCurve("x", (10, 5))

    def test_values_are_negative_log10(self):
        curve = PopularityCurve("x", (1, 100))
        assert list(curve.values()) == [0.0, -2.0]


class TestShapeClassification:
    def test_flat_global(self):
        # Present everywhere within one decade of rank: google-like.
        curve = PopularityCurve("g", tuple(sorted(3 + i // 5 for i in range(45))))
        assert classify_shape(curve) == "global-flat"

    def test_global_slope(self):
        ranks = tuple(sorted(int(10 ** (1 + 2.5 * i / 44)) for i in range(45)))
        assert classify_shape(PopularityCurve("g", ranks)) == "global-slope"

    def test_single_country(self):
        curve = PopularityCurve("n", tuple([4] + [MISSING_RANK] * 44))
        assert classify_shape(curve) == "single-country"

    def test_multi_regional_plateau(self):
        # Strong in 6 countries (hbomax pattern), absent elsewhere.
        curve = PopularityCurve(
            "h", tuple(sorted([50, 60, 70, 80, 90, 100] + [MISSING_RANK] * 39))
        )
        assert classify_shape(curve) == "multi-regional"

    def test_mostly_global(self):
        ranks = tuple(sorted([100] * 40 + [MISSING_RANK] * 5))
        assert classify_shape(PopularityCurve("m", ranks)) == "mostly-global"

    def test_scattered_tail(self):
        ranks = tuple(sorted([9000] * 10 + [MISSING_RANK] * 35))
        assert classify_shape(PopularityCurve("s", ranks)) == "scattered-tail"

    def test_all_curves_classify_into_known_shapes(self, endemicity):
        for curve in endemicity.curves[:500]:
            assert classify_shape(curve) in ALL_SHAPES


class TestScoring:
    def test_scores_non_negative_and_bounded(self, endemicity):
        assert np.all(endemicity.scores >= -1e-9)
        upper = 44 * math.log10(MISSING_RANK)
        assert np.all(endemicity.scores <= upper + 1e-9)

    def test_partition(self, endemicity):
        assert endemicity.global_sites | endemicity.national_sites == {
            c.site for c in endemicity.curves
        }
        assert not endemicity.global_sites & endemicity.national_sites

    def test_small_global_fraction(self, endemicity):
        # Paper Table 2: ~2 % of scored sites are globally popular.
        assert 0.003 <= endemicity.global_fraction <= 0.12

    def test_known_anchor_sites_classified_global(self, endemicity, generator):
        for name in ("google", "facebook", "twitter", "wikipedia"):
            assert generator.universe.canonical_of(name) in endemicity.global_sites, name

    def test_known_national_sites_classified_national(self, endemicity, generator):
        for name in ("naver", "bbc", "globo", "allegro"):
            canonical = generator.universe.canonical_of(name)
            if any(c.site == canonical for c in endemicity.curves):
                assert canonical in endemicity.national_sites, name

    def test_empty_input_raises(self):
        with pytest.raises(ValueError):
            score_endemicity({}, eligible_rank=100)


class TestExclusivity:
    def test_exclusivity_near_paper_value(self, lists):
        fraction, population = exclusivity_fraction(lists, head_rank=150)
        # Paper: 53.9 % of top-1K sites appear in no other country's
        # top-10K; band kept generous for the small universe.
        assert 0.30 <= fraction <= 0.75
        assert population > 1_000

    def test_population_grows_with_head_depth(self, lists):
        # Deeper heads admit more sites into the scored population.  Note
        # that the exclusive *fraction* is not monotone in depth: each
        # country's handful of endemic champions dominates the tiny
        # top-10 union, while shared sites are counted only once.
        _, shallow_pop = exclusivity_fraction(lists, head_rank=20)
        _, deep_pop = exclusivity_fraction(lists, head_rank=500)
        assert deep_pop > shallow_pop


class TestCategorySplit:
    def test_split_shapes(self, endemicity, labels):
        global_shares, national_shares = category_split(endemicity, labels)
        if global_shares:
            assert sum(global_shares.values()) == pytest.approx(1.0)
        assert sum(national_shares.values()) == pytest.approx(1.0)

    def test_global_sites_skew_to_global_categories(self, endemicity, labels):
        global_shares, national_shares = category_split(endemicity, labels)
        # Technology + Pornography + Gaming + Chat should be better
        # represented among global sites than national ones.
        global_mass = sum(
            global_shares.get(c, 0.0)
            for c in ("Technology", "Pornography", "Gaming", "Chat & Messaging",
                      "Photography", "Search Engines", "Social Networks")
        )
        national_mass = sum(
            national_shares.get(c, 0.0)
            for c in ("Technology", "Pornography", "Gaming", "Chat & Messaging",
                      "Photography", "Search Engines", "Social Networks")
        )
        assert global_mass > national_mass

    def test_national_sites_skew_to_local_categories(self, endemicity, labels):
        global_shares, national_shares = category_split(endemicity, labels)
        national_mass = sum(
            national_shares.get(c, 0.0)
            for c in ("Educational Institutions", "Government & Politics",
                      "Economy & Finance", "News & Media")
        )
        global_mass = sum(
            global_shares.get(c, 0.0)
            for c in ("Educational Institutions", "Government & Politics",
                      "Economy & Finance", "News & Media")
        )
        assert national_mass > global_mass


class TestPopularityCurvesBuilder:
    def test_curve_per_eligible_site(self, lists):
        curves = popularity_curves(lists, eligible_rank=50)
        eligible = set()
        for ranked in lists.values():
            eligible.update(ranked.top(50).sites)
        assert {c.site for c in curves} == eligible

    def test_curves_have_45_entries(self, lists):
        curves = popularity_curves(lists, eligible_rank=50)
        assert all(c.n_countries == 45 for c in curves)
