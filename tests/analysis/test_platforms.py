"""Tests for desktop-vs-mobile differences (Figure 4 / Section 4.3)."""

import pytest

from repro.analysis.platforms import platform_differences, split_by_leaning
from repro.core import Metric, REFERENCE_MONTH


@pytest.fixture(scope="module")
def differences(reference_dataset, labels):
    return platform_differences(
        reference_dataset, labels, Metric.PAGE_LOADS, REFERENCE_MONTH,
        top_n=1_500, min_significant=10,
    )


class TestStructure:
    def test_scores_bounded(self, differences):
        for diff in differences:
            assert -1.0 <= diff.median_score <= 1.0

    def test_significance_counts_bounded(self, differences):
        for diff in differences:
            assert 0 < diff.n_significant <= diff.n_countries == 45

    def test_sorted_by_score(self, differences):
        scores = [d.median_score for d in differences]
        assert scores == sorted(scores)

    def test_split_by_leaning_partitions(self, differences):
        desktop, mobile = split_by_leaning(differences)
        assert len(desktop) + len(mobile) == len(differences)
        assert all(d.median_score <= 0 for d in desktop)
        assert all(d.median_score > 0 for d in mobile)


class TestPaperShape:
    """Figure 4's direction-of-effect claims."""

    def test_pornography_is_mobile_leaning(self, differences):
        by_cat = {d.category: d for d in differences}
        assert "Pornography" in by_cat
        assert by_cat["Pornography"].mobile_leaning

    def test_work_and_school_desktop_leaning(self, differences):
        by_cat = {d.category: d for d in differences}
        for category in ("Business", "Educational Institutions", "Economy & Finance"):
            if category in by_cat:
                assert not by_cat[category].mobile_leaning, category
        # At least two of the desktop trio must be significant at all.
        present = [c for c in ("Business", "Educational Institutions",
                               "Economy & Finance", "Webmail", "Gaming")
                   if c in by_cat]
        assert len(present) >= 2

    def test_gaming_desktop_leaning_from_browser_perspective(self, differences):
        by_cat = {d.category: d for d in differences}
        if "Gaming" in by_cat:
            assert not by_cat["Gaming"].mobile_leaning

    def test_lifestyle_categories_mobile_leaning(self, differences):
        by_cat = {d.category: d for d in differences}
        mobile_hits = [
            c for c in ("Dating & Relationships", "Gambling", "Magazines",
                        "Lifestyle", "Astrology")
            if c in by_cat and by_cat[c].mobile_leaning
        ]
        assert len(mobile_hits) >= 2

    def test_time_metric_roughly_consistent(self, reference_dataset, labels):
        # "Our results roughly hold for time on page as well" (Fig 15).
        time_diffs = platform_differences(
            reference_dataset, labels, Metric.TIME_ON_PAGE, REFERENCE_MONTH,
            top_n=1_500, min_significant=10,
        )
        by_cat = {d.category: d for d in time_diffs}
        # Lifestyle/adult content stays mobile-leaning by time.
        for category in ("Pornography", "Dating & Relationships", "Gambling"):
            if category in by_cat:
                assert by_cat[category].mobile_leaning, category
        # Video streaming time is overwhelmingly a desktop-browser
        # activity (mobile users stream in native apps), and gaming/chat
        # keep their desktop lean.
        for category in ("Video Streaming", "Gaming", "Chat & Messaging"):
            if category in by_cat:
                assert not by_cat[category].mobile_leaning, category


class TestValidation:
    def test_requires_shared_countries(self, reference_dataset, labels):
        with pytest.raises(ValueError):
            platform_differences(
                reference_dataset, labels, Metric.PAGE_LOADS, REFERENCE_MONTH,
                countries=(),
            )
