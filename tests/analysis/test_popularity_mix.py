"""Tests for global-vs-national share by rank (Figure 9)."""

import pytest

from repro.analysis.endemicity import score_endemicity
from repro.analysis.popularity_mix import (
    global_share_by_rank,
    national_majority_rank,
)
from repro.core import Metric, Platform, REFERENCE_MONTH

BUCKETS = ((1, 10), (11, 20), (21, 50), (51, 100), (101, 200), (201, 500))


@pytest.fixture(scope="module")
def lists(reference_dataset):
    return reference_dataset.select(
        Platform.WINDOWS, Metric.PAGE_LOADS, REFERENCE_MONTH
    )


@pytest.fixture(scope="module")
def shares(lists):
    endemicity = score_endemicity(lists, eligible_rank=200)
    return global_share_by_rank(lists, endemicity, buckets=BUCKETS)


class TestStructure:
    def test_one_row_per_bucket(self, shares):
        assert [row.bucket for row in shares] == list(BUCKETS)

    def test_values_are_fractions(self, shares):
        for row in shares:
            assert 0.0 <= row.stats.q25 <= row.stats.median <= row.stats.q75 <= 1.0

    def test_45_countries_per_bucket(self, shares):
        for row in shares:
            assert len(row.per_country) == 45


class TestPaperShape:
    def test_global_sites_predominate_in_top10(self, shares):
        # Paper: median of 6-7 of the top 10 are globally popular.
        top10 = shares[0]
        assert top10.stats.median >= 0.5

    def test_national_share_grows_down_the_ranks(self, shares):
        top10 = shares[0].stats.median
        ranks_101_200 = next(r for r in shares if r.bucket == (101, 200))
        # Paper: 65-73 % national at ranks 101-200.
        assert ranks_101_200.stats.median < top10
        assert ranks_101_200.stats.median <= 0.5

    def test_national_majority_reached_early(self, shares):
        bucket = national_majority_rank(shares)
        assert bucket is not None
        # Paper: parity "starting at top 20".
        assert bucket[0] <= 101

    def test_monotone_trend_overall(self, shares):
        medians = [row.stats.median for row in shares]
        # Allow small local wiggles but require a strong overall drop.
        assert medians[0] - medians[-1] > 0.3
