"""Tests for country clustering (Figures 11, 21)."""

import pytest

from repro.analysis.clustering import (
    cluster_countries,
    clusters_share_language_or_region,
)
from repro.analysis.similarity import rbo_matrix_for
from repro.core import Metric, Platform, REFERENCE_MONTH


@pytest.fixture(scope="module")
def matrix(reference_dataset):
    return rbo_matrix_for(
        reference_dataset, Platform.WINDOWS, Metric.PAGE_LOADS,
        REFERENCE_MONTH, depth=1_500,
    )


@pytest.fixture(scope="module")
def report(matrix):
    return cluster_countries(matrix)


class TestClusterReport:
    def test_every_country_clustered_once(self, report, matrix):
        members = [c for cluster in report.clusters for c in cluster.members]
        assert sorted(members) == sorted(matrix.countries)

    def test_plural_clusters(self, report):
        # Paper found 11 clusters among 45 countries; we accept a band.
        assert 4 <= report.n_clusters <= 20

    def test_exemplar_is_a_member(self, report):
        for cluster in report.clusters:
            assert cluster.exemplar in cluster.members

    def test_cluster_of_lookup(self, report):
        cluster = report.cluster_of("US")
        assert "US" in cluster.members
        with pytest.raises(KeyError):
            report.cluster_of("XX")

    def test_clusters_are_weak_but_positive(self, report):
        # Paper: "clusters are only weakly bound together, with an
        # average SC of only 0.11".
        assert -0.1 <= report.average_silhouette <= 0.5


class TestClusterIndexing:
    """``index`` must track list position after the silhouette sort;
    ``affinity_index`` must keep pointing into the AffinityResult
    (regression for the stale-index bug)."""

    def test_index_matches_list_position(self, report):
        for position, cluster in enumerate(report.clusters):
            assert cluster.index == position

    def test_sorted_by_silhouette_descending(self, report):
        silhouettes = [c.silhouette for c in report.clusters]
        assert silhouettes == sorted(silhouettes, reverse=True)

    def test_affinity_index_maps_to_affinity_members(self, report, matrix):
        for cluster in report.clusters:
            affinity_members = {
                matrix.countries[int(i)]
                for i in report.affinity.members(cluster.affinity_index)
            }
            assert affinity_members == set(cluster.members)

    def test_affinity_index_maps_to_exemplar(self, report, matrix):
        for cluster in report.clusters:
            exemplar_point = int(report.affinity.exemplars[cluster.affinity_index])
            assert matrix.countries[exemplar_point] == cluster.exemplar


class TestGeographicCoherence:
    def test_clusters_track_language_or_region(self, report):
        # Most multi-country clusters should share language or region
        # (the paper's own clusters are weak too — avg SC 0.11, with a
        # mixed sub-Saharan-Africa/India group).
        assert clusters_share_language_or_region(report) >= 0.5

    def test_some_spanish_american_countries_cluster(self, report):
        latam = ["MX", "AR", "CL", "CO", "PE", "EC", "UY", "GT"]
        together = max(
            sum(1 for c in latam if c in cluster.members)
            for cluster in report.clusters
        )
        assert together >= 3

    def test_north_africa_groups(self, report):
        africa = ["DZ", "MA", "TN", "EG"]
        together = max(
            sum(1 for c in africa if c in cluster.members)
            for cluster in report.clusters
        )
        assert together >= 2

    def test_korea_or_japan_isolated_or_small(self, report):
        # JP and KR have "distinct browsing patterns separating them
        # from all other country clusters".
        kr = report.cluster_of("KR")
        jp = report.cluster_of("JP")
        assert min(kr.size, jp.size) <= 4
