"""Tests for the geographic-structure analysis (Section 5.3)."""

import math

import pytest

from repro.analysis.geography import (
    GLOBAL_SOUTH,
    decompose_similarity,
    explained_variance,
    global_south_patterns,
)
from repro.analysis.similarity import rbo_matrix_for
from repro.core import Metric, Platform, REFERENCE_MONTH
from repro.world.countries import COUNTRY_CODES


@pytest.fixture(scope="module")
def matrix(reference_dataset):
    return rbo_matrix_for(
        reference_dataset, Platform.WINDOWS, Metric.PAGE_LOADS,
        REFERENCE_MONTH, depth=1_500,
    )


class TestGlobalSouthRoster:
    def test_subset_of_study_countries(self):
        assert GLOBAL_SOUTH <= set(COUNTRY_CODES)

    def test_sensible_membership(self):
        assert {"NG", "IN", "BR", "VN"} <= GLOBAL_SOUTH
        assert not {"US", "GB", "DE", "JP"} & GLOBAL_SOUTH


class TestDecomposition:
    def test_ordering_of_relationship_classes(self, matrix):
        decomposition = decompose_similarity(matrix)
        # Same region group > shared language > unrelated.
        assert decomposition.same_region_group > decomposition.unrelated
        if not math.isnan(decomposition.shared_language):
            assert decomposition.shared_language > decomposition.unrelated

    def test_lifts_positive(self, matrix):
        decomposition = decompose_similarity(matrix)
        assert decomposition.language_lift > 0 or math.isnan(
            decomposition.shared_language
        )

    def test_pair_counts_partition(self, matrix):
        decomposition = decompose_similarity(matrix)
        assert sum(decomposition.n_pairs.values()) == 45 * 44 // 2


class TestExplainedVariance:
    def test_partial_explanation(self, matrix):
        r2 = explained_variance(matrix)
        # "Geographic proximity and shared language only partially
        # explain country differences": clearly positive, clearly
        # below a full explanation.
        assert 0.02 <= r2 <= 0.8


class TestGlobalSouthPatterns:
    def test_paper_classes_concentrate_in_south(self, reference_dataset, generator):
        lists = reference_dataset.select(
            Platform.WINDOWS, Metric.PAGE_LOADS, REFERENCE_MONTH
        )
        uni = generator.universe
        tags = {uni.canonical[uid]: t for uid, t in uni.tags.items()}
        patterns = global_south_patterns(lists, tags, top_k=25)
        # Universities / gambling / sports skew to the global south
        # (Section 5.3.2).  Sports includes the named ESPN/Marca anchors
        # (US/ES), so assert the aggregate skew plus the two cleanly
        # southern classes.
        south = north = 0
        for tag in ("university", "gambling", "sports"):
            south += len(patterns[tag].south_countries)
            north += len(patterns[tag].north_countries)
        assert south / max(south + north, 1) >= 0.6
        for tag in ("university", "gambling"):
            if patterns[tag].south_countries or patterns[tag].north_countries:
                assert patterns[tag].south_fraction >= 0.6, tag

    def test_empty_class_handled(self, reference_dataset, generator):
        lists = reference_dataset.select(
            Platform.WINDOWS, Metric.PAGE_LOADS, REFERENCE_MONTH
        )
        patterns = global_south_patterns(lists, {}, class_tags=("nothing",))
        assert patterns["nothing"].south_fraction == 0.0
