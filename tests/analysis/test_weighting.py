"""Tests for the traffic-weighting helpers."""

import pytest

from repro.analysis.weighting import (
    average_over_countries,
    count_by_category,
    per_site_share,
    share_by_category,
    weighted_volume_by_category,
)
from repro.core import Metric, Platform, RankedList
from repro.synth.traffic import global_distribution

DIST = global_distribution(Platform.WINDOWS, Metric.PAGE_LOADS)
LABELS = {"g": "Search Engines", "y": "Video Streaming", "f": "Social Networks",
          "a": "Ecommerce", "n": "Video Streaming"}
RANKED = RankedList(["g", "y", "f", "a", "n", "x"])


class TestCounting:
    def test_count_by_category(self):
        counts = count_by_category(RANKED, LABELS)
        assert counts["Video Streaming"] == 2
        assert counts["Unknown"] == 1

    def test_count_with_top_n(self):
        counts = count_by_category(RANKED, LABELS, top_n=2)
        assert counts == {"Search Engines": 1, "Video Streaming": 1}

    def test_share_by_category_sums_to_one(self):
        shares = share_by_category(RANKED, LABELS)
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_share_of_empty_list(self):
        assert share_by_category(RankedList([]), LABELS) == {}


class TestWeightedVolumes:
    def test_rank_one_dominates(self):
        volumes = weighted_volume_by_category(RANKED, LABELS, DIST)
        # Rank 1 holds 17 % of all traffic; no other single rank comes close.
        assert max(volumes, key=volumes.get) == "Search Engines"

    def test_normalised_sums_to_one(self):
        volumes = weighted_volume_by_category(RANKED, LABELS, DIST)
        assert sum(volumes.values()) == pytest.approx(1.0)

    def test_unnormalised_sums_to_cumulative(self):
        volumes = weighted_volume_by_category(RANKED, LABELS, DIST, normalize=False)
        assert sum(volumes.values()) == pytest.approx(
            DIST.cumulative_share(len(RANKED)), rel=1e-6
        )

    def test_weighted_differs_from_counting(self):
        counts = share_by_category(RANKED, LABELS)
        volumes = weighted_volume_by_category(RANKED, LABELS, DIST)
        # Video Streaming has 2 of 6 sites but far less than 2/6 of traffic.
        assert counts["Video Streaming"] > volumes["Video Streaming"]

    def test_empty_list(self):
        assert weighted_volume_by_category(RankedList([]), LABELS, DIST) == {}


class TestPerSiteShare:
    def test_shares_follow_rank(self):
        shares = per_site_share(RANKED, DIST)
        assert shares["g"] > shares["y"] > shares["x"]

    def test_rank_one_share(self):
        shares = per_site_share(RANKED, DIST)
        assert shares["g"] == pytest.approx(0.17)


class TestAveraging:
    def test_average_over_countries(self):
        per_country = {
            "US": {"Business": 0.4},
            "BR": {"Business": 0.2, "Sports": 0.2},
        }
        avg = average_over_countries(per_country)
        assert avg["Business"] == pytest.approx(0.3)
        # Missing categories count as zero.
        assert avg["Sports"] == pytest.approx(0.1)

    def test_empty_input(self):
        assert average_over_countries({}) == {}

    def test_explicit_categories(self):
        avg = average_over_countries({"US": {"A": 1.0}}, categories=("A", "B"))
        assert avg == {"A": 1.0, "B": 0.0}
