"""Tests for the concentration analysis (Figure 1 / Section 4.1)."""

import pytest

from repro.analysis.concentration import (
    all_concentration_curves,
    concentration_curve,
    headline_concentration,
    per_country_top1,
    sites_for_traffic_share,
)
from repro.core import Metric, Platform
from repro.synth.traffic import global_distribution
from repro.world.countries import COUNTRY_CODES

W_LOADS = global_distribution(Platform.WINDOWS, Metric.PAGE_LOADS)
W_TIME = global_distribution(Platform.WINDOWS, Metric.TIME_ON_PAGE)
A_LOADS = global_distribution(Platform.ANDROID, Metric.PAGE_LOADS)


class TestCurves:
    def test_paper_anchor_rows(self):
        curve = concentration_curve(W_LOADS, Platform.WINDOWS, Metric.PAGE_LOADS)
        assert curve.share_at(1) == pytest.approx(0.17)
        assert curve.share_at(10_000) == pytest.approx(0.70)
        assert curve.share_at(1_000_000) == pytest.approx(0.955)

    def test_rows_are_monotone(self):
        curve = concentration_curve(W_TIME, Platform.WINDOWS, Metric.TIME_ON_PAGE)
        shares = [row.cumulative_share for row in curve.rows]
        assert shares == sorted(shares)

    def test_missing_rank_raises(self):
        curve = concentration_curve(W_LOADS, Platform.WINDOWS, Metric.PAGE_LOADS)
        with pytest.raises(KeyError):
            curve.share_at(42)

    def test_all_curves_from_dataset(self, reference_dataset):
        curves = all_concentration_curves(reference_dataset)
        assert len(curves) == 4


class TestHeadlines:
    def test_windows_loads_headlines(self):
        headline = headline_concentration(W_LOADS, Platform.WINDOWS, Metric.PAGE_LOADS)
        assert headline.top1 == pytest.approx(0.17)
        assert headline.sites_for_quarter == 6         # "25% ... only six sites"
        assert headline.top10k == pytest.approx(0.70)

    def test_windows_time_headlines(self):
        headline = headline_concentration(W_TIME, Platform.WINDOWS, Metric.TIME_ON_PAGE)
        assert headline.top1 == pytest.approx(0.24)
        assert headline.sites_for_half == 7            # "half ... just 7 sites"

    def test_android_less_concentrated(self):
        android = headline_concentration(A_LOADS, Platform.ANDROID, Metric.PAGE_LOADS)
        windows = headline_concentration(W_LOADS, Platform.WINDOWS, Metric.PAGE_LOADS)
        assert android.sites_for_quarter > windows.sites_for_quarter
        assert android.sites_for_quarter == 10         # "Ten websites ... 25%"

    def test_sites_for_traffic_share_helper(self):
        assert sites_for_traffic_share(W_LOADS, 0.25) == 6


class TestPerCountry:
    def test_per_country_top1_in_band(self):
        shares, stats = per_country_top1(COUNTRY_CODES)
        assert len(shares) == 45
        assert 0.12 <= min(shares.values())
        assert max(shares.values()) <= 0.33
        assert 0.15 <= stats.median <= 0.25
