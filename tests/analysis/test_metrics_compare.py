"""Tests for loads-vs-time comparisons (Section 4.4 / Figure 5)."""

import pytest

from repro.analysis.metrics_compare import (
    LOADS_LEANING,
    OTHER,
    TIME_LEANING,
    category_overlap,
    classify_leaning,
    leaning_composition,
    metric_overlap,
)
from repro.core import Metric, Platform, REFERENCE_MONTH


class TestMetricOverlap:
    def test_intersections_bounded(self, reference_dataset):
        overlap = metric_overlap(reference_dataset, Platform.WINDOWS, REFERENCE_MONTH)
        assert len(overlap.intersections) == 45
        for value in overlap.intersections.values():
            assert 0.0 < value <= 1.0

    def test_mobile_agreement_exceeds_desktop(self, reference_dataset):
        desktop = metric_overlap(reference_dataset, Platform.WINDOWS, REFERENCE_MONTH)
        mobile = metric_overlap(reference_dataset, Platform.ANDROID, REFERENCE_MONTH)
        assert mobile.intersection_stats.median > desktop.intersection_stats.median
        assert mobile.spearman_stats.median > desktop.spearman_stats.median

    def test_rank_correlation_is_modest_not_perfect(self, reference_dataset):
        overlap = metric_overlap(reference_dataset, Platform.WINDOWS, REFERENCE_MONTH)
        assert 0.3 < overlap.spearman_stats.median < 0.95

    def test_category_overlap_runs(self, reference_dataset, labels):
        loads = reference_dataset.get("US", Platform.WINDOWS, Metric.PAGE_LOADS,
                                      REFERENCE_MONTH)
        time = reference_dataset.get("US", Platform.WINDOWS, Metric.TIME_ON_PAGE,
                                     REFERENCE_MONTH)
        intersection, rho = category_overlap(loads, time, labels, "Technology")
        assert 0.0 <= intersection <= 1.0

    def test_category_overlap_empty_category(self, reference_dataset, labels):
        loads = reference_dataset.get("US", Platform.WINDOWS, Metric.PAGE_LOADS,
                                      REFERENCE_MONTH)
        time = reference_dataset.get("US", Platform.WINDOWS, Metric.TIME_ON_PAGE,
                                     REFERENCE_MONTH)
        intersection, rho = category_overlap(loads, time, labels, "Digital Postcards")
        assert intersection in (0.0,) or 0 <= intersection <= 1


class TestClassifyLeaning:
    def test_classes_partition_union(self, reference_dataset):
        loads = reference_dataset.get("US", Platform.WINDOWS, Metric.PAGE_LOADS,
                                      REFERENCE_MONTH)
        time = reference_dataset.get("US", Platform.WINDOWS, Metric.TIME_ON_PAGE,
                                     REFERENCE_MONTH)
        result = classify_leaning(loads, time, reference_dataset,
                                  Platform.WINDOWS, "US")
        union = set(loads.sites) | set(time.sites)
        assert set(result.classes) == union
        n = len(union)
        n_time = len(result.sites_in(TIME_LEANING))
        n_loads = len(result.sites_in(LOADS_LEANING))
        assert n_time == pytest.approx(0.2 * n, rel=0.02)
        assert n_loads == pytest.approx(0.2 * n, rel=0.02)
        assert n_time + n_loads + len(result.sites_in(OTHER)) == n

    def test_time_only_sites_lean_time(self, reference_dataset):
        loads = reference_dataset.get("US", Platform.WINDOWS, Metric.PAGE_LOADS,
                                      REFERENCE_MONTH)
        time = reference_dataset.get("US", Platform.WINDOWS, Metric.TIME_ON_PAGE,
                                     REFERENCE_MONTH)
        result = classify_leaning(loads, time, reference_dataset,
                                  Platform.WINDOWS, "US")
        time_only = set(time.sites) - set(loads.sites)
        loads_leaning = set(result.sites_in(LOADS_LEANING))
        # A site absent from the loads list takes the loads floor share,
        # so it can be time-leaning or middling, but essentially never
        # loads-leaning.
        misfires = len(time_only & loads_leaning) / max(len(time_only), 1)
        assert misfires < 0.10

    def test_tail_fraction_validation(self, reference_dataset):
        loads = reference_dataset.get("US", Platform.WINDOWS, Metric.PAGE_LOADS,
                                      REFERENCE_MONTH)
        time = reference_dataset.get("US", Platform.WINDOWS, Metric.TIME_ON_PAGE,
                                     REFERENCE_MONTH)
        with pytest.raises(ValueError):
            classify_leaning(loads, time, reference_dataset, Platform.WINDOWS,
                             "US", tail_fraction=0.6)


class TestLeaningComposition:
    @pytest.fixture(scope="class")
    def composition(self, reference_dataset, labels):
        return leaning_composition(
            reference_dataset, labels, Platform.WINDOWS, REFERENCE_MONTH,
            countries=("US", "BR", "JP", "FR", "NG", "MX", "IN", "DE"),
        )

    def test_all_classes_present(self, composition):
        assert set(composition.shares) == {LOADS_LEANING, TIME_LEANING, OTHER}

    def test_video_streaming_overrepresented_in_time_leaning(self, composition):
        time_video = composition.shares[TIME_LEANING].get("Video Streaming")
        loads_video = composition.shares[LOADS_LEANING].get("Video Streaming")
        assert time_video is not None
        if loads_video is not None:
            assert time_video.median >= loads_video.median

    def test_commerce_overrepresented_in_loads_leaning(self, composition):
        loads_cats = composition.overrepresented_in(LOADS_LEANING)
        assert any(c in loads_cats for c in
                   ("Ecommerce", "Economy & Finance", "Educational Institutions"))

    def test_time_leaning_highlights_paper_categories(self, composition):
        time_cats = composition.overrepresented_in(TIME_LEANING)
        assert any(c in time_cats for c in
                   ("Video Streaming", "Movies & Home Video", "News & Media",
                    "Television"))
