"""Tests for study-set sampling strategies (Section 6)."""

import pytest

from repro.analysis.sampling import (
    compare_strategies,
    country_coverage,
    coverage_report,
    global_study_set,
    hybrid_study_set,
)
from repro.core import Metric, Platform, REFERENCE_MONTH, RankedList


@pytest.fixture(scope="module")
def lists(reference_dataset):
    return reference_dataset.select(
        Platform.WINDOWS, Metric.PAGE_LOADS, REFERENCE_MONTH
    )


@pytest.fixture(scope="module")
def dist(reference_dataset):
    return reference_dataset.distribution(Platform.WINDOWS, Metric.PAGE_LOADS)


class TestStudySets:
    def test_global_set_size(self, lists, dist):
        assert len(global_study_set(lists, dist, 500)) == 500

    def test_global_set_contains_the_head(self, lists, dist):
        study = global_study_set(lists, dist, 100)
        assert "google" in study
        assert "facebook.com" in study

    def test_hybrid_superset_of_country_heads(self, lists, dist):
        study = hybrid_study_set(lists, dist, 100, 50)
        for country in ("KR", "BR", "NG"):
            assert set(lists[country].top(50).sites) <= study

    def test_hybrid_larger_than_global_component(self, lists, dist):
        hybrid = hybrid_study_set(lists, dist, 100, 50)
        assert len(hybrid) > 100

    def test_n_validation(self, lists, dist):
        with pytest.raises(ValueError):
            global_study_set(lists, dist, 0)


class TestCoverage:
    def test_full_list_covers_everything(self, lists, dist):
        ranked = lists["US"]
        assert country_coverage(set(ranked.sites), ranked, dist) == pytest.approx(1.0)

    def test_empty_set_covers_nothing(self, lists, dist):
        assert country_coverage(set(), lists["US"], dist) == 0.0

    def test_head_heavy_coverage(self, lists, dist):
        # The top-10 sites alone cover a large share of modelled traffic
        # (the concentration result, re-expressed).
        ranked = lists["US"]
        head = set(ranked.top(10).sites)
        assert country_coverage(head, ranked, dist) > 0.3

    def test_empty_list(self, dist):
        assert country_coverage({"x"}, RankedList([]), dist) == 0.0

    def test_report_structure(self, lists, dist):
        study = global_study_set(lists, dist, 200)
        report = coverage_report("g200", study, lists, dist)
        assert len(report.per_country) == 45
        assert 0.0 <= report.minimum <= report.stats.median <= 1.0
        assert len(report.worst_countries) == 5


class TestStrategyComparison:
    def test_hybrid_raises_worst_country_coverage(self, lists, dist):
        global_report, hybrid_report = compare_strategies(
            lists, dist, global_n=1_000,
            hybrid_global_n=200, hybrid_per_country_n=200,
        )
        assert hybrid_report.minimum > global_report.minimum

    def test_global_set_shortchanges_small_markets(self, lists, dist):
        global_report, _ = compare_strategies(
            lists, dist, global_n=1_000,
            hybrid_global_n=200, hybrid_per_country_n=200,
        )
        # The global ranking is install-base-weighted, so the worst
        # covered countries are small markets whose endemic sites never
        # enter it — the §6 bias toward populous countries.
        from repro.world.countries import COUNTRIES, get_country
        median_scale = sorted(c.web_scale for c in COUNTRIES)[len(COUNTRIES) // 2]
        for code in global_report.worst_countries:
            assert get_country(code).web_scale <= median_scale, code
