"""Site interning and the id-array / set caches on RankedList."""

import threading

import numpy as np
import pytest

from repro.core import RankedList, SiteVocabulary


class TestSiteVocabulary:
    def test_first_seen_order(self):
        vocab = SiteVocabulary()
        assert vocab.intern("a") == 0
        assert vocab.intern("b") == 1
        assert vocab.intern("a") == 0
        assert len(vocab) == 2

    def test_round_trip(self):
        vocab = SiteVocabulary(["x", "y", "z"])
        for site in ("x", "y", "z"):
            assert vocab.site_of(vocab.id_of(site)) == site

    def test_intern_many_mixes_new_and_seen(self):
        vocab = SiteVocabulary(["a", "b"])
        ids = vocab.intern_many(("b", "c", "a", "d"))
        assert ids.dtype == np.int32
        assert ids.tolist() == [1, 2, 0, 3]
        assert len(vocab) == 4

    def test_lookups(self):
        vocab = SiteVocabulary(["a"])
        assert "a" in vocab
        assert "z" not in vocab
        assert vocab.get("z") == -1
        assert vocab.get("z", default=7) == 7
        with pytest.raises(KeyError):
            vocab.id_of("z")

    def test_concurrent_interning_is_consistent(self):
        vocab = SiteVocabulary()
        sites = [f"s{i}" for i in range(500)]
        results: list[np.ndarray] = [None] * 8

        def work(slot: int) -> None:
            results[slot] = vocab.intern_many(sites)

        threads = [threading.Thread(target=work, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(vocab) == 500
        for arr in results[1:]:
            assert arr.tolist() == results[0].tolist()


class TestRankedListIds:
    def test_cached_per_vocabulary(self):
        ranked = RankedList(["a", "b", "c"])
        vocab = SiteVocabulary()
        first = ranked.ids(vocab)
        assert first is ranked.ids(vocab)  # same array object, no re-intern
        other = SiteVocabulary(["z"])
        second = ranked.ids(other)
        assert second is not first
        assert second.tolist() == [1, 2, 3]  # "z" took id 0

    def test_ids_are_read_only(self):
        arr = RankedList(["a"]).ids(SiteVocabulary())
        with pytest.raises(ValueError):
            arr[0] = 5

    def test_shared_vocab_aligns_lists(self):
        vocab = SiteVocabulary()
        a = RankedList(["g", "x", "y"]).ids(vocab)
        b = RankedList(["y", "g", "q"]).ids(vocab)
        # Same site, same id across lists.
        assert a[0] == b[1]
        assert a[2] == b[0]


class TestDerivedListFastPaths:
    def test_top_skips_revalidation_and_shares_nothing_lazy(self):
        ranked = RankedList([f"s{i}" for i in range(100)])
        head = ranked.top(10)
        assert head.sites == ranked.sites[:10]
        # Trusted construction: no rank dict or set built eagerly.
        assert head._rank_cache is None
        assert head._set_cache is None

    def test_slice_and_filter_still_validate_semantics(self):
        ranked = RankedList(["a", "b", "c", "d"])
        assert ranked.slice(2, 3).sites == ("b", "c")
        assert ranked.filter(lambda s: s != "b").sites == ("a", "c", "d")
        with pytest.raises(ValueError):
            ranked.slice(0, 2)

    def test_intersection_does_not_build_rank_dicts(self):
        a = RankedList(["a", "b", "c"])
        b = RankedList(["b", "c", "d"])
        assert a.intersection(b) == {"b", "c"}
        assert a._rank_cache is None
        assert b._rank_cache is None

    def test_membership_does_not_build_rank_dict(self):
        ranked = RankedList(["a", "b"])
        assert "a" in ranked
        assert "z" not in ranked
        assert ranked._rank_cache is None


class TestDatasetVocabulary:
    def test_shared_and_grows_on_demand(self, reference_dataset):
        # The dataset vocabulary is a shared singleton; interning a list
        # through it covers at least that list's sites.  (Grow-on-demand
        # emptiness is asserted on a fresh dataset below, because the
        # session-scoped fixture's vocabulary is shared across tests.)
        vocab = reference_dataset.vocabulary()
        assert vocab is reference_dataset.vocabulary()
        breakdown = next(iter(reference_dataset.breakdowns()))
        ranked = reference_dataset[breakdown]
        ids = ranked.ids(vocab)
        assert len(ids) == len(ranked)
        assert len(vocab) >= len(ranked)

    def test_fresh_dataset_vocabulary_starts_empty(self):
        from repro.core import Breakdown, BrowsingDataset, Metric, Month, Platform

        dataset = BrowsingDataset({
            Breakdown("US", Platform.WINDOWS, Metric.PAGE_LOADS,
                      Month(2022, 2)): RankedList(["a", "b"]),
        }, {})
        assert len(dataset.vocabulary()) == 0  # nothing interned yet
