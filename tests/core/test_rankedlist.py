"""Unit and property tests for RankedList."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import RankedList
from repro.core.errors import RankListError

SITES = ("google", "youtube", "facebook", "amazon", "netflix")


@pytest.fixture
def ranked() -> RankedList:
    return RankedList(SITES)


class TestConstruction:
    def test_rejects_duplicates(self):
        with pytest.raises(RankListError):
            RankedList(["a", "b", "a"])

    def test_rejects_empty_identifier(self):
        with pytest.raises(RankListError):
            RankedList(["a", ""])

    def test_empty_list_is_allowed(self):
        assert len(RankedList([])) == 0

    def test_from_scores_orders_by_score_desc(self):
        ranked = RankedList.from_scores({"a": 1.0, "b": 3.0, "c": 2.0})
        assert ranked.sites == ("b", "c", "a")

    def test_from_scores_breaks_ties_lexicographically(self):
        ranked = RankedList.from_scores({"zz": 1.0, "aa": 1.0, "mm": 1.0})
        assert ranked.sites == ("aa", "mm", "zz")


class TestRankQueries:
    def test_getitem_is_one_indexed(self, ranked):
        assert ranked[1] == "google"
        assert ranked[5] == "netflix"

    def test_getitem_out_of_range(self, ranked):
        with pytest.raises(IndexError):
            ranked[0]
        with pytest.raises(IndexError):
            ranked[6]

    def test_rank_of(self, ranked):
        assert ranked.rank_of("google") == 1
        assert ranked.rank_of("netflix") == 5
        assert ranked.rank_of("missing") is None

    def test_rank_or_sentinel(self, ranked):
        assert ranked.rank_or("missing", 10_001) == 10_001
        assert ranked.rank_or("google", 10_001) == 1

    def test_contains(self, ranked):
        assert "google" in ranked
        assert "missing" not in ranked


class TestDerivedLists:
    def test_top_prefix(self, ranked):
        assert ranked.top(2).sites == ("google", "youtube")

    def test_top_beyond_length_returns_self(self, ranked):
        assert ranked.top(100) is ranked

    def test_slice_inclusive(self, ranked):
        assert ranked.slice(2, 4).sites == ("youtube", "facebook", "amazon")

    def test_slice_invalid(self, ranked):
        with pytest.raises(ValueError):
            ranked.slice(0, 3)
        with pytest.raises(ValueError):
            ranked.slice(3, 2)

    def test_filter_preserves_order(self, ranked):
        kept = ranked.filter(lambda s: "e" in s)
        assert kept.sites == ("google", "youtube", "facebook", "netflix")

    def test_rename_merges_collisions_keeping_best_rank(self):
        ranked = RankedList(["google.com", "youtube.com", "google.co.uk"])
        merged = ranked.rename({"google.com": "google", "google.co.uk": "google"})
        assert merged.sites == ("google", "youtube.com")


class TestComparisons:
    def test_intersection(self, ranked):
        other = RankedList(["youtube", "netflix", "tiktok"])
        assert ranked.intersection(other) == {"youtube", "netflix"}

    def test_percent_intersection_normalises_by_smaller(self, ranked):
        other = RankedList(["google", "youtube"])
        assert ranked.percent_intersection(other) == 1.0

    def test_percent_intersection_empty(self):
        assert RankedList([]).percent_intersection(RankedList(["a"])) == 0.0

    def test_rank_pairs(self, ranked):
        other = RankedList(["netflix", "google"])
        xs, ys = ranked.rank_pairs(other)
        assert xs == [1, 5]
        assert ys == [2, 1]


sites_strategy = st.lists(
    st.text(alphabet="abcdefgh", min_size=1, max_size=6),
    min_size=0, max_size=40, unique=True,
)


class TestProperties:
    @given(sites_strategy)
    @settings(max_examples=50)
    def test_rank_of_is_inverse_of_getitem(self, sites):
        ranked = RankedList(sites)
        for position, site in enumerate(ranked.sites, start=1):
            assert ranked[position] == site
            assert ranked.rank_of(site) == position

    @given(sites_strategy, st.integers(min_value=0, max_value=50))
    @settings(max_examples=50)
    def test_top_n_length(self, sites, n):
        ranked = RankedList(sites)
        assert len(ranked.top(n)) == min(n, len(sites))

    @given(sites_strategy, sites_strategy)
    @settings(max_examples=50)
    def test_percent_intersection_symmetric_and_bounded(self, a, b):
        ra, rb = RankedList(a), RankedList(b)
        pab = ra.percent_intersection(rb)
        pba = rb.percent_intersection(ra)
        assert pab == pba
        assert 0.0 <= pab <= 1.0

    @given(sites_strategy)
    @settings(max_examples=50)
    def test_self_intersection_is_total(self, sites):
        ranked = RankedList(sites)
        if len(ranked) > 0:
            assert ranked.percent_intersection(ranked) == 1.0
