"""Unit and property tests for TrafficDistribution."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import TrafficDistribution
from repro.core.distribution import concentration_table
from repro.core.errors import DistributionError

#: The Windows page-loads anchors from Section 4.1.2.
ANCHORS = ((1, 0.17), (6, 0.25), (100, 0.397), (10_000, 0.70), (1_000_000, 0.955))


@pytest.fixture
def dist() -> TrafficDistribution:
    return TrafficDistribution(ANCHORS)


class TestConstruction:
    def test_requires_rank_one(self):
        with pytest.raises(DistributionError):
            TrafficDistribution([(2, 0.1), (10, 0.5)])

    def test_requires_increasing_shares(self):
        with pytest.raises(DistributionError):
            TrafficDistribution([(1, 0.5), (10, 0.4)])

    def test_requires_increasing_ranks(self):
        with pytest.raises(DistributionError):
            TrafficDistribution([(1, 0.1), (1, 0.2)])

    def test_requires_at_least_two_anchors(self):
        with pytest.raises(DistributionError):
            TrafficDistribution([(1, 0.2)])

    def test_share_bounds(self):
        with pytest.raises(DistributionError):
            TrafficDistribution([(1, 0.0), (10, 0.5)])
        with pytest.raises(DistributionError):
            TrafficDistribution([(1, 0.5), (10, 1.5)])

    def test_total_sites_must_cover_anchors(self):
        with pytest.raises(DistributionError):
            TrafficDistribution([(1, 0.1), (100, 0.5)], total_sites=50)


class TestEvaluation:
    def test_anchors_are_interpolated_exactly(self, dist):
        for rank, share in ANCHORS:
            assert dist.cumulative_share(rank) == pytest.approx(share, abs=1e-9)

    def test_cumulative_share_monotone(self, dist):
        ranks = np.unique(np.logspace(0, 6, 200).astype(int))
        shares = dist.cumulative_shares(ranks.astype(float))
        assert np.all(np.diff(shares) >= -1e-12)

    def test_share_of_rank_positive_and_decreasing_at_head(self, dist):
        shares = [dist.share_of_rank(r) for r in range(1, 50)]
        assert all(s >= 0 for s in shares)
        assert shares[0] > shares[10] > shares[40]

    def test_rank_below_one_rejected(self, dist):
        with pytest.raises(DistributionError):
            dist.cumulative_share(0.5)

    def test_weights_sum_to_cumulative(self, dist):
        w = dist.weights(10_000)
        assert w.sum() == pytest.approx(dist.cumulative_share(10_000), rel=1e-6)
        assert np.all(w >= 0)

    def test_normalized_weights_sum_to_one(self, dist):
        w = dist.normalized_weights(500)
        assert w.sum() == pytest.approx(1.0)

    def test_sites_for_share_matches_paper_quotes(self, dist):
        # 25 % of Windows page loads are served by only six sites.
        assert dist.sites_for_share(0.25) == 6
        assert dist.sites_for_share(0.17) == 1

    def test_sites_for_share_monotone(self, dist):
        previous = 0
        for share in (0.1, 0.2, 0.4, 0.7, 0.9):
            n = dist.sites_for_share(share)
            assert n >= previous
            previous = n

    def test_roundtrip_serialisation(self, dist):
        again = TrafficDistribution.from_dict(dist.to_dict())
        for rank in (1, 10, 999, 123_456):
            assert again.cumulative_share(rank) == pytest.approx(
                dist.cumulative_share(rank)
            )

    def test_concentration_table(self, dist):
        table = concentration_table(dist, [1, 100])
        assert table[0] == (1, pytest.approx(0.17))
        assert table[1][1] == pytest.approx(0.397)


@st.composite
def anchor_sets(draw):
    n = draw(st.integers(min_value=2, max_value=6))
    ranks = sorted(draw(st.sets(
        st.integers(min_value=2, max_value=999_999), min_size=n - 1, max_size=n - 1,
    )))
    shares = sorted(draw(st.lists(
        st.floats(min_value=0.01, max_value=0.99, allow_nan=False),
        min_size=n, max_size=n, unique=True,
    )))
    return tuple([(1, shares[0])] + list(zip(ranks, shares[1:])))


class TestProperties:
    @given(anchor_sets())
    @settings(max_examples=40)
    def test_weights_always_non_negative(self, anchors):
        dist = TrafficDistribution(anchors)
        w = dist.weights(2_000)
        assert np.all(w >= 0)

    @given(anchor_sets(), st.integers(min_value=1, max_value=999_999))
    @settings(max_examples=40)
    def test_cumulative_in_unit_interval(self, anchors, rank):
        dist = TrafficDistribution(anchors)
        assert 0.0 <= dist.cumulative_share(rank) <= 1.0
