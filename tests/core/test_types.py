"""Unit tests for the core enums and breakdown keys."""

import pytest

from repro.core.types import (
    DECEMBER,
    REFERENCE_MONTH,
    STUDY_MONTHS,
    Breakdown,
    Metric,
    Month,
    Platform,
)


class TestPlatform:
    def test_studied_platforms_are_windows_and_android(self):
        assert Platform.studied() == (Platform.WINDOWS, Platform.ANDROID)

    def test_desktop_mobile_partition(self):
        desktops = {p for p in Platform if p.is_desktop}
        mobiles = {p for p in Platform if p.is_mobile}
        assert desktops == {Platform.WINDOWS, Platform.MAC_OS, Platform.LINUX}
        assert mobiles == {Platform.ANDROID, Platform.IOS}
        assert desktops | mobiles == set(Platform)
        assert not desktops & mobiles


class TestMetric:
    def test_studied_metrics(self):
        assert Metric.studied() == (Metric.PAGE_LOADS, Metric.TIME_ON_PAGE)

    def test_initiated_loads_excluded_from_studied(self):
        assert Metric.INITIATED_PAGE_LOADS not in Metric.studied()


class TestMonth:
    def test_ordering_is_chronological(self):
        assert Month(2021, 12) < Month(2022, 1)
        assert Month(2021, 9) < Month(2021, 10)

    def test_next_and_prev_roundtrip(self):
        m = Month(2021, 12)
        assert m.next() == Month(2022, 1)
        assert m.next().prev() == m

    def test_year_boundary(self):
        assert Month(2022, 1).prev() == Month(2021, 12)

    def test_index_is_monotone(self):
        months = list(Month.range(Month(2021, 1), Month(2023, 12)))
        indices = [m.index() for m in months]
        assert indices == sorted(indices)
        assert len(set(indices)) == len(indices)

    def test_adjacency(self):
        assert Month(2021, 12).is_adjacent(Month(2022, 1))
        assert not Month(2021, 11).is_adjacent(Month(2022, 1))
        assert not Month(2021, 11).is_adjacent(Month(2021, 11))

    def test_study_months_span_sep_to_feb(self):
        assert len(STUDY_MONTHS) == 6
        assert STUDY_MONTHS[0] == Month(2021, 9)
        assert STUDY_MONTHS[-1] == REFERENCE_MONTH == Month(2022, 2)
        assert DECEMBER in STUDY_MONTHS

    def test_invalid_month_rejected(self):
        with pytest.raises(ValueError):
            Month(2021, 13)
        with pytest.raises(ValueError):
            Month(2021, 0)

    def test_range_rejects_reversed_bounds(self):
        with pytest.raises(ValueError):
            list(Month.range(Month(2022, 2), Month(2021, 9)))

    def test_str_format(self):
        assert str(Month(2021, 9)) == "2021-09"


class TestBreakdown:
    def test_with_helpers_replace_one_dimension(self):
        b = Breakdown("US", Platform.WINDOWS, Metric.PAGE_LOADS, REFERENCE_MONTH)
        assert b.with_country("BR").country == "BR"
        assert b.with_metric(Metric.TIME_ON_PAGE).metric is Metric.TIME_ON_PAGE
        assert b.with_platform(Platform.ANDROID).platform is Platform.ANDROID
        assert b.with_month(DECEMBER).month == DECEMBER
        # original unchanged
        assert b.country == "US" and b.metric is Metric.PAGE_LOADS

    def test_bad_country_code_rejected(self):
        with pytest.raises(ValueError):
            Breakdown("usa", Platform.WINDOWS, Metric.PAGE_LOADS, REFERENCE_MONTH)
        with pytest.raises(ValueError):
            Breakdown("us", Platform.WINDOWS, Metric.PAGE_LOADS, REFERENCE_MONTH)

    def test_breakdowns_are_hashable_keys(self):
        a = Breakdown("US", Platform.WINDOWS, Metric.PAGE_LOADS, REFERENCE_MONTH)
        b = Breakdown("US", Platform.WINDOWS, Metric.PAGE_LOADS, REFERENCE_MONTH)
        assert a == b and hash(a) == hash(b)
        assert len({a, b}) == 1
