"""Unit tests for BrowsingDataset."""

import pytest

from repro.core import (
    Breakdown,
    BrowsingDataset,
    Metric,
    Month,
    Platform,
    RankedList,
    TrafficDistribution,
)
from repro.core.errors import DatasetError, MissingBreakdownError

MONTH = Month(2022, 2)
DIST = TrafficDistribution([(1, 0.17), (100, 0.4), (10_000, 0.7)], total_sites=10_000)


def _mini_dataset() -> BrowsingDataset:
    lists = {
        Breakdown("US", Platform.WINDOWS, Metric.PAGE_LOADS, MONTH):
            RankedList(["google", "youtube", "amazon"]),
        Breakdown("BR", Platform.WINDOWS, Metric.PAGE_LOADS, MONTH):
            RankedList(["google", "globo", "youtube"]),
        Breakdown("US", Platform.ANDROID, Metric.PAGE_LOADS, MONTH):
            RankedList(["google", "facebook"]),
    }
    return BrowsingDataset(
        lists,
        {(Platform.WINDOWS, Metric.PAGE_LOADS): DIST},
        metadata={"seed": 1},
    )


class TestIndices:
    def test_countries_sorted(self):
        assert _mini_dataset().countries == ("BR", "US")

    def test_platforms_and_metrics(self):
        ds = _mini_dataset()
        assert set(ds.platforms) == {Platform.WINDOWS, Platform.ANDROID}
        assert ds.metrics == (Metric.PAGE_LOADS,)
        assert ds.months == (MONTH,)

    def test_len_counts_lists(self):
        assert len(_mini_dataset()) == 3

    def test_empty_dataset_rejected(self):
        with pytest.raises(DatasetError):
            BrowsingDataset({}, {})


class TestLookups:
    def test_get_returns_list(self):
        ds = _mini_dataset()
        assert ds.get("US", Platform.WINDOWS, Metric.PAGE_LOADS, MONTH)[1] == "google"

    def test_missing_breakdown_raises(self):
        ds = _mini_dataset()
        with pytest.raises(MissingBreakdownError):
            ds.get("US", Platform.WINDOWS, Metric.TIME_ON_PAGE, MONTH)

    def test_get_or_none(self):
        ds = _mini_dataset()
        assert ds.get_or_none("ZZ", Platform.WINDOWS, Metric.PAGE_LOADS, MONTH) is None

    def test_distribution_lookup(self):
        ds = _mini_dataset()
        assert ds.distribution(Platform.WINDOWS, Metric.PAGE_LOADS) is DIST
        with pytest.raises(DatasetError):
            ds.distribution(Platform.ANDROID, Metric.PAGE_LOADS)


class TestSlicing:
    def test_select_returns_per_country_lists(self):
        ds = _mini_dataset()
        lists = ds.select(Platform.WINDOWS, Metric.PAGE_LOADS, MONTH)
        assert set(lists) == {"US", "BR"}

    def test_select_omits_missing_countries(self):
        ds = _mini_dataset()
        lists = ds.select(Platform.ANDROID, Metric.PAGE_LOADS, MONTH)
        assert set(lists) == {"US"}

    def test_select_with_explicit_countries(self):
        ds = _mini_dataset()
        lists = ds.select(Platform.WINDOWS, Metric.PAGE_LOADS, MONTH, countries=("BR",))
        assert set(lists) == {"BR"}

    def test_restrict_countries(self):
        ds = _mini_dataset().restrict_countries(["US"])
        assert ds.countries == ("US",)

    def test_filter_to_nothing_raises(self):
        with pytest.raises(DatasetError):
            _mini_dataset().filter(lambda b: False)

    def test_map_lists_transforms_every_list(self):
        ds = _mini_dataset().map_lists(lambda b, rl: rl.top(1))
        for breakdown in ds.breakdowns():
            assert len(ds[breakdown]) == 1


class TestGeneratedDataset:
    def test_generated_dataset_has_45_countries(self, reference_dataset):
        assert len(reference_dataset.countries) == 45

    def test_every_breakdown_has_full_list(self, reference_dataset, generator):
        expected = generator.config.list_size
        for breakdown in reference_dataset.breakdowns():
            assert len(reference_dataset[breakdown]) == expected

    def test_metadata_records_seed(self, reference_dataset, generator):
        assert reference_dataset.metadata["seed"] == generator.config.seed
