"""Tests for dataset persistence."""

import json

import pytest

from repro.core import Metric, Platform, REFERENCE_MONTH
from repro.core.errors import DatasetError
from repro.export.io import load_dataset, save_dataset


@pytest.fixture(scope="module")
def small_slice(generator):
    return generator.generate(
        countries=("US", "KR"),
        platforms=(Platform.WINDOWS,),
        metrics=Metric.studied(),
        months=(REFERENCE_MONTH,),
    )


class TestRoundTrip:
    def test_save_load_identity(self, small_slice, tmp_path):
        save_dataset(small_slice, tmp_path / "ds")
        loaded = load_dataset(tmp_path / "ds")
        assert set(loaded.breakdowns()) == set(small_slice.breakdowns())
        for breakdown in small_slice.breakdowns():
            assert loaded[breakdown] == small_slice[breakdown]

    def test_distributions_survive(self, small_slice, tmp_path):
        save_dataset(small_slice, tmp_path / "ds")
        loaded = load_dataset(tmp_path / "ds")
        original = small_slice.distribution(Platform.WINDOWS, Metric.PAGE_LOADS)
        restored = loaded.distribution(Platform.WINDOWS, Metric.PAGE_LOADS)
        for rank in (1, 100, 9_999):
            assert restored.cumulative_share(rank) == pytest.approx(
                original.cumulative_share(rank)
            )

    def test_metadata_survives(self, small_slice, tmp_path):
        save_dataset(small_slice, tmp_path / "ds")
        loaded = load_dataset(tmp_path / "ds")
        assert loaded.metadata["seed"] == small_slice.metadata["seed"]

    def test_fingerprint_recorded_in_manifest(self, small_slice, generator, tmp_path):
        root = save_dataset(small_slice, tmp_path / "ds")
        manifest = json.loads((root / "manifest.json").read_text())
        assert manifest["metadata"]["fingerprint"] == generator.config.fingerprint()

    def test_files_are_plain_text(self, small_slice, tmp_path):
        root = save_dataset(small_slice, tmp_path / "ds")
        files = sorted((root / "lists").glob("*.txt"))
        assert files
        first = files[0].read_text(encoding="utf-8").splitlines()
        assert all(line and " " not in line for line in first[:50])


class TestMetadata:
    """save_dataset must coerce or refuse metadata — never drop it silently."""

    def _dataset_with(self, small_slice, metadata):
        from repro.core import BrowsingDataset

        return BrowsingDataset(
            {b: small_slice[b] for b in small_slice.breakdowns()},
            small_slice.distributions(),
            metadata,
        )

    def test_round_trip_metadata_and_distributions(self, small_slice, tmp_path):
        from repro.core import Metric as M, Platform as P

        dataset = self._dataset_with(small_slice, {
            "seed": 7,
            "note": "hello",
            "ratio": 0.25,
            "flag": True,
            "knobs": {"alpha": 1, "beta": [1, 2, 3]},
        })
        save_dataset(dataset, tmp_path / "ds")
        loaded = load_dataset(tmp_path / "ds")
        assert dict(loaded.metadata) == dict(dataset.metadata)
        for platform in (P.WINDOWS,):
            for metric in (M.PAGE_LOADS, M.TIME_ON_PAGE):
                original = dataset.distribution(platform, metric)
                restored = loaded.distribution(platform, metric)
                for rank in (1, 50, 1_000):
                    assert restored.cumulative_share(rank) == pytest.approx(
                        original.cumulative_share(rank)
                    )

    def test_month_and_enum_values_coerced(self, small_slice, tmp_path):
        from repro.core import Metric as M, Month, Platform as P

        dataset = self._dataset_with(small_slice, {
            "month": Month(2022, 2),
            "platform": P.ANDROID,
            "metric": M.TIME_ON_PAGE,
        })
        save_dataset(dataset, tmp_path / "ds")
        loaded = load_dataset(tmp_path / "ds")
        assert loaded.metadata["month"] == "2022-02"
        assert loaded.metadata["platform"] == "android"
        assert loaded.metadata["metric"] == "time_on_page"

    def test_non_serializable_value_raises(self, small_slice, tmp_path):
        dataset = self._dataset_with(small_slice, {"bad": object()})
        with pytest.raises(DatasetError, match="bad"):
            save_dataset(dataset, tmp_path / "ds")


class TestErrors:
    def test_missing_manifest(self, tmp_path):
        with pytest.raises(DatasetError):
            load_dataset(tmp_path)

    def test_wrong_format_version(self, small_slice, tmp_path):
        root = save_dataset(small_slice, tmp_path / "ds")
        manifest = json.loads((root / "manifest.json").read_text())
        manifest["format_version"] = 999
        (root / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(DatasetError):
            load_dataset(root)
