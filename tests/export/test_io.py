"""Tests for dataset persistence."""

import json

import pytest

from repro.core import Metric, Platform, REFERENCE_MONTH
from repro.core.errors import DatasetError
from repro.export.io import load_dataset, save_dataset


@pytest.fixture(scope="module")
def small_slice(generator):
    return generator.generate(
        countries=("US", "KR"),
        platforms=(Platform.WINDOWS,),
        metrics=Metric.studied(),
        months=(REFERENCE_MONTH,),
    )


class TestRoundTrip:
    def test_save_load_identity(self, small_slice, tmp_path):
        save_dataset(small_slice, tmp_path / "ds")
        loaded = load_dataset(tmp_path / "ds")
        assert set(loaded.breakdowns()) == set(small_slice.breakdowns())
        for breakdown in small_slice.breakdowns():
            assert loaded[breakdown] == small_slice[breakdown]

    def test_distributions_survive(self, small_slice, tmp_path):
        save_dataset(small_slice, tmp_path / "ds")
        loaded = load_dataset(tmp_path / "ds")
        original = small_slice.distribution(Platform.WINDOWS, Metric.PAGE_LOADS)
        restored = loaded.distribution(Platform.WINDOWS, Metric.PAGE_LOADS)
        for rank in (1, 100, 9_999):
            assert restored.cumulative_share(rank) == pytest.approx(
                original.cumulative_share(rank)
            )

    def test_metadata_survives(self, small_slice, tmp_path):
        save_dataset(small_slice, tmp_path / "ds")
        loaded = load_dataset(tmp_path / "ds")
        assert loaded.metadata["seed"] == small_slice.metadata["seed"]

    def test_files_are_plain_text(self, small_slice, tmp_path):
        root = save_dataset(small_slice, tmp_path / "ds")
        files = sorted((root / "lists").glob("*.txt"))
        assert files
        first = files[0].read_text(encoding="utf-8").splitlines()
        assert all(line and " " not in line for line in first[:50])


class TestErrors:
    def test_missing_manifest(self, tmp_path):
        with pytest.raises(DatasetError):
            load_dataset(tmp_path)

    def test_wrong_format_version(self, small_slice, tmp_path):
        root = save_dataset(small_slice, tmp_path / "ds")
        manifest = json.loads((root / "manifest.json").read_text())
        manifest["format_version"] = 999
        (root / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(DatasetError):
            load_dataset(root)
