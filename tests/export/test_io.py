"""Tests for dataset persistence."""

import json

import pytest

from repro.core import Metric, Platform, REFERENCE_MONTH
from repro.core.errors import DatasetError
from repro.export.io import (
    available_formats,
    convert_dataset,
    detect_format,
    load_dataset,
    save_dataset,
)


@pytest.fixture(scope="module")
def small_slice(generator):
    return generator.generate(
        countries=("US", "KR"),
        platforms=(Platform.WINDOWS,),
        metrics=Metric.studied(),
        months=(REFERENCE_MONTH,),
    )


class TestRoundTrip:
    def test_save_load_identity(self, small_slice, tmp_path):
        save_dataset(small_slice, tmp_path / "ds")
        loaded = load_dataset(tmp_path / "ds")
        assert set(loaded.breakdowns()) == set(small_slice.breakdowns())
        for breakdown in small_slice.breakdowns():
            assert loaded[breakdown] == small_slice[breakdown]

    def test_distributions_survive(self, small_slice, tmp_path):
        save_dataset(small_slice, tmp_path / "ds")
        loaded = load_dataset(tmp_path / "ds")
        original = small_slice.distribution(Platform.WINDOWS, Metric.PAGE_LOADS)
        restored = loaded.distribution(Platform.WINDOWS, Metric.PAGE_LOADS)
        for rank in (1, 100, 9_999):
            assert restored.cumulative_share(rank) == pytest.approx(
                original.cumulative_share(rank)
            )

    def test_metadata_survives(self, small_slice, tmp_path):
        save_dataset(small_slice, tmp_path / "ds")
        loaded = load_dataset(tmp_path / "ds")
        assert loaded.metadata["seed"] == small_slice.metadata["seed"]

    def test_fingerprint_recorded_in_manifest(self, small_slice, generator, tmp_path):
        root = save_dataset(small_slice, tmp_path / "ds")
        manifest = json.loads((root / "manifest.json").read_text())
        assert manifest["metadata"]["fingerprint"] == generator.config.fingerprint()

    def test_files_are_plain_text(self, small_slice, tmp_path):
        root = save_dataset(small_slice, tmp_path / "ds")
        files = sorted((root / "lists").glob("*.txt"))
        assert files
        first = files[0].read_text(encoding="utf-8").splitlines()
        assert all(line and " " not in line for line in first[:50])


class TestMetadata:
    """save_dataset must coerce or refuse metadata — never drop it silently."""

    def _dataset_with(self, small_slice, metadata):
        from repro.core import BrowsingDataset

        return BrowsingDataset(
            {b: small_slice[b] for b in small_slice.breakdowns()},
            small_slice.distributions(),
            metadata,
        )

    def test_round_trip_metadata_and_distributions(self, small_slice, tmp_path):
        from repro.core import Metric as M, Platform as P

        dataset = self._dataset_with(small_slice, {
            "seed": 7,
            "note": "hello",
            "ratio": 0.25,
            "flag": True,
            "knobs": {"alpha": 1, "beta": [1, 2, 3]},
        })
        save_dataset(dataset, tmp_path / "ds")
        loaded = load_dataset(tmp_path / "ds")
        assert dict(loaded.metadata) == dict(dataset.metadata)
        for platform in (P.WINDOWS,):
            for metric in (M.PAGE_LOADS, M.TIME_ON_PAGE):
                original = dataset.distribution(platform, metric)
                restored = loaded.distribution(platform, metric)
                for rank in (1, 50, 1_000):
                    assert restored.cumulative_share(rank) == pytest.approx(
                        original.cumulative_share(rank)
                    )

    def test_month_and_enum_values_coerced(self, small_slice, tmp_path):
        from repro.core import Metric as M, Month, Platform as P

        dataset = self._dataset_with(small_slice, {
            "month": Month(2022, 2),
            "platform": P.ANDROID,
            "metric": M.TIME_ON_PAGE,
        })
        save_dataset(dataset, tmp_path / "ds")
        loaded = load_dataset(tmp_path / "ds")
        assert loaded.metadata["month"] == "2022-02"
        assert loaded.metadata["platform"] == "android"
        assert loaded.metadata["metric"] == "time_on_page"

    def test_non_serializable_value_raises(self, small_slice, tmp_path):
        dataset = self._dataset_with(small_slice, {"bad": object()})
        with pytest.raises(DatasetError, match="bad"):
            save_dataset(dataset, tmp_path / "ds")


class TestErrors:
    def test_missing_manifest(self, tmp_path):
        with pytest.raises(DatasetError, match="neither manifest.bin"):
            load_dataset(tmp_path)

    def test_wrong_format_version(self, small_slice, tmp_path):
        root = save_dataset(small_slice, tmp_path / "ds")
        manifest = json.loads((root / "manifest.json").read_text())
        manifest["format_version"] = 999
        (root / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(DatasetError):
            load_dataset(root)

    def test_missing_list_file_names_file_and_breakdown(
        self, small_slice, tmp_path
    ):
        root = save_dataset(small_slice, tmp_path / "ds")
        victim = sorted((root / "lists").glob("*.txt"))[0]
        victim.unlink()
        with pytest.raises(DatasetError, match=f"torn.*{victim.name}"):
            load_dataset(root)

    def test_duplicate_manifest_breakdown_rejected(
        self, small_slice, tmp_path
    ):
        root = save_dataset(small_slice, tmp_path / "ds")
        manifest = json.loads((root / "manifest.json").read_text())
        manifest["breakdowns"].append(dict(manifest["breakdowns"][0]))
        (root / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(DatasetError, match="duplicate manifest entry"):
            load_dataset(root)


class TestCodecRegistry:
    def test_both_builtin_codecs_registered(self):
        assert set(available_formats()) >= {"text", "columnar"}

    def test_detect_format(self, small_slice, tmp_path):
        save_dataset(small_slice, tmp_path / "text", format="text")
        save_dataset(small_slice, tmp_path / "col", format="columnar")
        assert detect_format(tmp_path / "text") == "text"
        assert detect_format(tmp_path / "col") == "columnar"
        assert detect_format(tmp_path / "nothing") is None

    def test_binary_manifest_wins_detection(self, small_slice, tmp_path):
        root = tmp_path / "both"
        save_dataset(small_slice, root, format="text")
        save_dataset(small_slice, root, format="columnar")
        assert detect_format(root) == "columnar"

    def test_unknown_format_lists_choices(self, small_slice, tmp_path):
        with pytest.raises(DatasetError, match="columnar.*text"):
            save_dataset(small_slice, tmp_path / "ds", format="parquet")

    def test_explicit_format_overrides_detection(self, small_slice, tmp_path):
        root = tmp_path / "both"
        save_dataset(small_slice, root, format="text")
        save_dataset(small_slice, root, format="columnar")
        eager = load_dataset(root, format="text")
        mapped = load_dataset(root, format="columnar")
        assert eager.storage == "memory"
        assert mapped.storage == "columnar-mmap"


class TestColumnarFormat:
    def test_save_load_identity(self, small_slice, tmp_path):
        save_dataset(small_slice, tmp_path / "ds", format="columnar")
        loaded = load_dataset(tmp_path / "ds")
        assert loaded.storage == "columnar-mmap"
        assert set(loaded.breakdowns()) == set(small_slice.breakdowns())
        for breakdown in small_slice.breakdowns():
            assert loaded[breakdown] == small_slice[breakdown]

    def test_metadata_fingerprint_round_trips(
        self, small_slice, generator, tmp_path
    ):
        from repro.export.io import dataset_fingerprint

        save_dataset(small_slice, tmp_path / "ds", format="columnar")
        loaded = load_dataset(tmp_path / "ds")
        assert loaded.metadata["fingerprint"] == \
            generator.config.fingerprint()
        assert dataset_fingerprint(loaded) == \
            dataset_fingerprint(small_slice)


class TestConvert:
    def test_text_to_columnar_and_back_is_byte_identical(
        self, small_slice, tmp_path
    ):
        src = save_dataset(small_slice, tmp_path / "src", format="text")
        convert_dataset(src, tmp_path / "col")
        convert_dataset(tmp_path / "col", tmp_path / "back", format="text")
        original = {
            p.relative_to(src): p.read_bytes()
            for p in sorted(src.rglob("*")) if p.is_file()
        }
        reexported = {
            p.relative_to(tmp_path / "back"): p.read_bytes()
            for p in sorted((tmp_path / "back").rglob("*")) if p.is_file()
        }
        assert original == reexported

    def test_convert_onto_itself_rejected(self, small_slice, tmp_path):
        src = save_dataset(small_slice, tmp_path / "src")
        with pytest.raises(DatasetError, match="different from the source"):
            convert_dataset(src, src)

    def test_convert_missing_source(self, tmp_path):
        with pytest.raises(DatasetError, match="no dataset under"):
            convert_dataset(tmp_path / "nope", tmp_path / "dst")


class TestCrashSafety:
    def test_no_temp_litter_either_codec(self, small_slice, tmp_path):
        for format in ("text", "columnar"):
            root = save_dataset(small_slice, tmp_path / format, format=format)
            assert not [
                p for p in root.rglob(".*") if p.is_file()
            ], f"{format} save left temp files behind"

    def test_failed_save_leaves_no_manifest(self, small_slice, tmp_path):
        # Unserializable metadata aborts the save after the list files
        # are written; because the manifest goes last, the directory is
        # not detected as a dataset rather than being detected as torn.
        from repro.core import BrowsingDataset

        bad = BrowsingDataset(
            {b: small_slice[b] for b in small_slice.breakdowns()},
            small_slice.distributions(),
            {"bad": object()},
        )
        root = tmp_path / "ds"
        with pytest.raises(DatasetError):
            save_dataset(bad, root, format="text")
        assert detect_format(root) is None


class TestDeprecatedAliases:
    def test_format_version_alias_warns_once_per_process(self):
        import repro._compat
        import repro.export.io as io

        repro._compat._warned.discard(("repro.export.io", "_FORMAT_VERSION"))
        with pytest.warns(DeprecationWarning, match="TEXT_FORMAT_VERSION"):
            value = io._FORMAT_VERSION
        assert value == io.TEXT_FORMAT_VERSION
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert io._FORMAT_VERSION == io.TEXT_FORMAT_VERSION

    def test_unknown_attribute_still_raises(self):
        import repro.export.io as io

        with pytest.raises(AttributeError):
            io.no_such_name
