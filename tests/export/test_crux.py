"""Tests for the CrUX-style public export."""

import pytest

from repro.core import Metric, Platform, REFERENCE_MONTH, RankedList
from repro.export.crux import (
    CRUX_BUCKETS,
    bucket_of,
    coarsen_list,
    export_crux,
    global_ranking,
)


class TestBuckets:
    @pytest.mark.parametrize("rank,expected", [
        (1, 1_000), (1_000, 1_000), (1_001, 5_000), (5_000, 5_000),
        (9_999, 10_000), (10_001, 50_000), (2_000_000, 1_000_000),
    ])
    def test_bucket_of(self, rank, expected):
        assert bucket_of(rank) == expected

    def test_rank_validation(self):
        with pytest.raises(ValueError):
            bucket_of(0)

    def test_coarsen_list(self):
        ranked = RankedList([f"s{i}" for i in range(1_200)])
        coarse = coarsen_list(ranked)
        assert coarse["s0"] == 1_000
        assert coarse["s999"] == 1_000
        assert coarse["s1000"] == 5_000

    def test_coarsening_loses_order_within_bucket(self):
        ranked = RankedList(["a", "b", "c"])
        coarse = coarsen_list(ranked)
        assert coarse["a"] == coarse["b"] == coarse["c"] == 1_000


class TestGlobalRanking:
    def test_shared_head_dominates(self, reference_dataset):
        lists = reference_dataset.select(
            Platform.WINDOWS, Metric.PAGE_LOADS, REFERENCE_MONTH
        )
        dist = reference_dataset.distribution(Platform.WINDOWS, Metric.PAGE_LOADS)
        ranking = global_ranking(lists, dist)
        # google leads every country, so it must lead the aggregate.
        assert ranking[1] == "google"
        # The union of all lists is ranked.
        union = set()
        for ranked in lists.values():
            union.update(ranked.sites)
        assert len(ranking) == len(union)

    def test_bigger_markets_weigh_more(self, reference_dataset):
        lists = reference_dataset.select(
            Platform.WINDOWS, Metric.PAGE_LOADS, REFERENCE_MONTH,
            countries=("US", "NZ"),
        )
        dist = reference_dataset.distribution(Platform.WINDOWS, Metric.PAGE_LOADS)
        ranking = global_ranking(lists, dist)
        us_second = lists["US"][2]
        nz_second = lists["NZ"][2]
        if us_second != nz_second:
            assert ranking.rank_of(us_second) < ranking.rank_of(nz_second)

    def test_empty_input(self):
        from repro.core import TrafficDistribution
        dist = TrafficDistribution([(1, 0.1), (10, 0.5)], total_sites=10)
        with pytest.raises(ValueError):
            global_ranking({}, dist)


class TestExport:
    def test_export_structure(self, reference_dataset):
        export = export_crux(
            reference_dataset, Platform.WINDOWS, REFERENCE_MONTH,
            countries=("US", "KR", "BR"),
        )
        assert export.countries() == ("BR", "KR", "US")
        assert export.metric is Metric.PAGE_LOADS
        # Every per-country bucket is a real CrUX magnitude.
        for buckets in export.per_country.values():
            assert set(buckets.values()) <= set(CRUX_BUCKETS)

    def test_top_sites_in_smallest_bucket(self, reference_dataset):
        export = export_crux(
            reference_dataset, Platform.WINDOWS, REFERENCE_MONTH,
            countries=("US", "KR"),
        )
        assert export.per_country["US"]["google"] == 1_000
        assert export.global_buckets["google"] == 1_000
        assert "naver.com" in export.sites_in_bucket(1_000, country="KR")

    def test_empty_slice_raises(self, reference_dataset):
        with pytest.raises(ValueError):
            export_crux(reference_dataset, Platform.WINDOWS, REFERENCE_MONTH,
                        countries=())
