"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def dataset_dir(tmp_path_factory):
    out = tmp_path_factory.mktemp("cli") / "ds"
    code = main([
        "generate", "--small", "--out", str(out),
        "--countries", "US", "KR",
    ])
    assert code == 0
    return out


class TestGenerate:
    def test_creates_manifest_and_lists(self, dataset_dir):
        assert (dataset_dir / "manifest.json").is_file()
        lists = list((dataset_dir / "lists").glob("*.txt"))
        # 2 countries x 2 platforms x 2 metrics x 1 month
        assert len(lists) == 8

    def test_month_parsing(self, tmp_path):
        out = tmp_path / "ds2"
        code = main([
            "generate", "--small", "--out", str(out),
            "--countries", "US", "--months", "2021-12",
        ])
        assert code == 0
        assert any("2021-12" in p.name for p in (out / "lists").glob("*.txt"))

    def test_bad_month_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["generate", "--small", "--out", str(tmp_path / "x"),
                  "--months", "december"])


class TestInspectAnalyze:
    def test_inspect_prints_table(self, dataset_dir, capsys):
        assert main(["inspect", "--data", str(dataset_dir),
                     "--country", "KR", "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "naver.com" in out

    def test_analyze_concentration(self, dataset_dir, capsys):
        assert main(["analyze", "--data", str(dataset_dir),
                     "--analysis", "concentration"]) == 0
        out = capsys.readouterr().out
        assert "top-1 share" in out
        assert "17.0%" in out

    def test_analyze_overlap(self, dataset_dir, capsys):
        assert main(["analyze", "--data", str(dataset_dir),
                     "--analysis", "overlap"]) == 0
        out = capsys.readouterr().out
        assert "Spearman" in out

    def test_analyze_composition(self, dataset_dir, capsys):
        assert main(["analyze", "--data", str(dataset_dir),
                     "--analysis", "composition", "--small"]) == 0
        out = capsys.readouterr().out
        assert "Search Engines" in out

    def test_analyze_clusters(self, dataset_dir, capsys):
        assert main(["analyze", "--data", str(dataset_dir),
                     "--analysis", "clusters"]) == 0
        out = capsys.readouterr().out
        assert "clusters" in out


class TestCruxAndWorld:
    def test_crux_export(self, dataset_dir, tmp_path, capsys):
        out = tmp_path / "crux.json"
        assert main(["crux", "--data", str(dataset_dir),
                     "--out", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert payload["metric"] == "page_loads"
        assert payload["global"]["google"] == 1_000
        assert set(payload["countries"]) == {"US", "KR"}

    def test_world_facts(self, capsys):
        assert main(["world"]) == 0
        out = capsys.readouterr().out
        assert "45 study countries" in out
        assert "61 categories" in out
