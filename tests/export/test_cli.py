"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import _build_parser, main
from repro.core import Metric, Platform


@pytest.fixture(scope="module")
def dataset_dir(tmp_path_factory):
    out = tmp_path_factory.mktemp("cli") / "ds"
    code = main([
        "generate", "--small", "--out", str(out),
        "--countries", "US", "KR",
    ])
    assert code == 0
    return out


class TestGenerate:
    def test_creates_manifest_and_lists(self, dataset_dir):
        assert (dataset_dir / "manifest.json").is_file()
        lists = list((dataset_dir / "lists").glob("*.txt"))
        # 2 countries x 2 platforms x 2 metrics x 1 month
        assert len(lists) == 8

    def test_month_parsing(self, tmp_path):
        out = tmp_path / "ds2"
        code = main([
            "generate", "--small", "--out", str(out),
            "--countries", "US", "--months", "2021-12",
        ])
        assert code == 0
        assert any("2021-12" in p.name for p in (out / "lists").glob("*.txt"))

    def test_bad_month_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["generate", "--small", "--out", str(tmp_path / "x"),
                  "--months", "december"])


class TestGenerateEngineFlags:
    def test_parser_accepts_engine_flags(self):
        args = _build_parser().parse_args([
            "generate", "--out", "somewhere",
            "--platforms", "windows",
            "--metrics", "time_on_page", "page_loads",
            "--jobs", "4", "--cache-dir", "slices",
        ])
        assert args.platforms == [Platform.WINDOWS]
        assert args.metrics == [Metric.TIME_ON_PAGE, Metric.PAGE_LOADS]
        assert args.jobs == 4
        assert args.cache_dir == "slices"

    def test_engine_flags_default_to_studied_grid_and_serial(self):
        args = _build_parser().parse_args(["generate", "--out", "somewhere"])
        assert args.platforms is None
        assert args.metrics is None
        assert args.jobs == 1
        assert args.cache_dir is None

    def test_bad_platform_rejected(self):
        with pytest.raises(SystemExit):
            _build_parser().parse_args(
                ["generate", "--out", "x", "--platforms", "amiga"]
            )

    def test_bad_metric_rejected(self):
        with pytest.raises(SystemExit):
            _build_parser().parse_args(
                ["generate", "--out", "x", "--metrics", "clicks"]
            )

    def test_platform_metric_subset_generated(self, tmp_path):
        out = tmp_path / "subset"
        code = main([
            "generate", "--small", "--out", str(out),
            "--countries", "US",
            "--platforms", "windows", "--metrics", "page_loads",
            "--cache-dir", str(tmp_path / "slices"),
        ])
        assert code == 0
        lists = list((out / "lists").glob("*.txt"))
        assert [p.name for p in lists] == ["US_windows_page_loads_2022-02.txt"]

    def test_cached_regeneration_is_identical(self, tmp_path):
        cache = tmp_path / "slices"
        first, second = tmp_path / "a", tmp_path / "b"
        for out in (first, second):
            code = main([
                "generate", "--small", "--out", str(out),
                "--countries", "US", "--platforms", "android",
                "--metrics", "time_on_page", "--cache-dir", str(cache),
            ])
            assert code == 0
        name = "US_android_time_on_page_2022-02.txt"
        assert (first / "lists" / name).read_bytes() == \
            (second / "lists" / name).read_bytes()


class TestConvert:
    def test_round_trip_is_byte_identical(self, dataset_dir, tmp_path, capsys):
        col = tmp_path / "col"
        back = tmp_path / "back"
        assert main(["convert", str(dataset_dir), str(col)]) == 0
        out = capsys.readouterr().out
        assert f"converted {dataset_dir} (text) -> {col} (columnar)" in out
        assert (col / "manifest.bin").is_file()
        assert main(["convert", str(col), str(back), "--format", "text"]) == 0
        for original in sorted((dataset_dir / "lists").glob("*.txt")):
            assert (back / "lists" / original.name).read_bytes() == \
                original.read_bytes()
        assert (back / "manifest.json").read_bytes() == \
            (dataset_dir / "manifest.json").read_bytes()

    def test_missing_source_exits_2(self, tmp_path, capsys):
        assert main(["convert", str(tmp_path / "nope"),
                     str(tmp_path / "dst")]) == 2
        assert "no dataset under" in capsys.readouterr().err

    def test_convert_onto_itself_exits_2(self, dataset_dir, capsys):
        assert main(["convert", str(dataset_dir), str(dataset_dir)]) == 2
        assert "different from the source" in capsys.readouterr().err

    def test_inspect_works_on_converted_dataset(
        self, dataset_dir, tmp_path, capsys
    ):
        col = tmp_path / "col"
        assert main(["convert", str(dataset_dir), str(col)]) == 0
        capsys.readouterr()
        assert main(["inspect", "--data", str(col),
                     "--country", "KR", "--top", "3"]) == 0
        assert "naver.com" in capsys.readouterr().out


class TestGenerateFormat:
    def test_generate_columnar_writes_binary_layout(self, tmp_path, capsys):
        out = tmp_path / "ds"
        code = main([
            "generate", "--small", "--out", str(out), "--countries", "US",
            "--platforms", "windows", "--metrics", "page_loads",
            "--format", "columnar",
        ])
        assert code == 0
        assert "(columnar)" in capsys.readouterr().out
        assert (out / "manifest.bin").is_file()
        assert not (out / "manifest.json").exists()

    def test_generated_codecs_agree(self, tmp_path):
        from repro.api import load

        text_dir, col_dir = tmp_path / "text", tmp_path / "col"
        for out, format in ((text_dir, "text"), (col_dir, "columnar")):
            assert main([
                "generate", "--small", "--out", str(out), "--countries", "US",
                "--platforms", "windows", "--metrics", "page_loads",
                "--format", format,
            ]) == 0
        text_ds, col_ds = load(text_dir), load(col_dir)
        for breakdown in text_ds.breakdowns():
            assert col_ds[breakdown] == text_ds[breakdown]

    def test_bad_format_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["generate", "--out", str(tmp_path / "x"),
                  "--format", "parquet"])


class TestInspectAnalyze:
    def test_inspect_prints_table(self, dataset_dir, capsys):
        assert main(["inspect", "--data", str(dataset_dir),
                     "--country", "KR", "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "naver.com" in out

    def test_analyze_concentration(self, dataset_dir, capsys):
        assert main(["analyze", "--data", str(dataset_dir),
                     "--analysis", "concentration"]) == 0
        out = capsys.readouterr().out
        assert "top-1 share" in out
        assert "17.0%" in out

    def test_analyze_overlap(self, dataset_dir, capsys):
        assert main(["analyze", "--data", str(dataset_dir),
                     "--analysis", "overlap"]) == 0
        out = capsys.readouterr().out
        assert "Spearman" in out

    def test_analyze_composition(self, dataset_dir, capsys):
        assert main(["analyze", "--data", str(dataset_dir),
                     "--analysis", "composition", "--small"]) == 0
        out = capsys.readouterr().out
        assert "Search Engines" in out

    def test_analyze_clusters(self, dataset_dir, capsys):
        assert main(["analyze", "--data", str(dataset_dir),
                     "--analysis", "clusters"]) == 0
        out = capsys.readouterr().out
        assert "clusters" in out


class TestCruxAndWorld:
    def test_crux_export(self, dataset_dir, tmp_path, capsys):
        out = tmp_path / "crux.json"
        assert main(["crux", "--data", str(dataset_dir),
                     "--out", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert payload["metric"] == "page_loads"
        assert payload["global"]["google"] == 1_000
        assert set(payload["countries"]) == {"US", "KR"}

    def test_world_facts(self, capsys):
        assert main(["world"]) == 0
        out = capsys.readouterr().out
        assert "45 study countries" in out
        assert "61 categories" in out


class TestInspectErrors:
    def test_unknown_country_exits_2_with_choices(self, dataset_dir, capsys):
        assert main(["inspect", "--data", str(dataset_dir),
                     "--country", "XX"]) == 2
        err = capsys.readouterr().err
        assert "unknown country 'XX'" in err
        assert "US" in err and "KR" in err

    def test_country_is_case_insensitive(self, dataset_dir, capsys):
        assert main(["inspect", "--data", str(dataset_dir),
                     "--country", "kr", "--top", "1"]) == 0
        out = capsys.readouterr().out
        assert "KR, 2022-02" in out


class TestCruxSliceFlags:
    def test_explicit_platform_metric_month(self, dataset_dir, tmp_path, capsys):
        out = tmp_path / "crux.json"
        assert main([
            "crux", "--data", str(dataset_dir), "--out", str(out),
            "--platform", "android", "--metric", "time_on_page",
            "--month", "2022-02",
        ]) == 0
        payload = json.loads(out.read_text())
        assert payload["platform"] == "android"
        assert payload["metric"] == "time_on_page"
        assert payload["month"] == "2022-02"

    def test_default_metric_prefers_page_loads(self, dataset_dir, tmp_path):
        out = tmp_path / "crux.json"
        assert main(["crux", "--data", str(dataset_dir),
                     "--out", str(out)]) == 0
        assert json.loads(out.read_text())["metric"] == "page_loads"

    def test_absent_slice_exits_2_listing_the_grid(
        self, dataset_dir, tmp_path, capsys
    ):
        assert main([
            "crux", "--data", str(dataset_dir),
            "--out", str(tmp_path / "crux.json"), "--month", "2021-12",
        ]) == 2
        err = capsys.readouterr().err
        assert "2021-12" in err
        assert "months: 2022-02" in err
        assert "platforms:" in err and "metrics:" in err

    def test_bad_month_flag_rejected_by_parser(self, dataset_dir, tmp_path):
        with pytest.raises(SystemExit):
            main(["crux", "--data", str(dataset_dir),
                  "--out", str(tmp_path / "x"), "--month", "february"])


class TestServeParser:
    def test_defaults(self):
        args = _build_parser().parse_args(["serve", "--data", "somewhere"])
        assert args.host == "127.0.0.1"
        assert args.port == 8000
        assert args.cache_size == 256
        assert args.jobs == 1
        assert args.store is None
        assert args.artifacts is None
        assert not args.no_store
        assert args.trace is None

    def test_port_zero_and_flags_accepted(self):
        # --no-artifacts is the legacy spelling of --no-store; both
        # land on the same namespace attribute.
        args = _build_parser().parse_args([
            "serve", "--data", "ds", "--port", "0",
            "--cache-size", "16", "--jobs", "4", "--no-artifacts",
        ])
        assert args.port == 0
        assert args.cache_size == 16
        assert args.no_store

    def test_fleet_flags(self):
        args = _build_parser().parse_args(["serve", "--data", "ds"])
        assert args.workers == 1
        assert args.cache_bytes is None
        args = _build_parser().parse_args([
            "serve", "--data", "ds", "--workers", "4",
            "--cache-bytes", "1048576",
        ])
        assert args.workers == 4
        assert args.cache_bytes == 1048576

    def test_trace_with_workers_exits_2(self, capsys):
        code = main([
            "serve", "--data", "ds", "--workers", "2",
            "--trace", "t.jsonl",
        ])
        assert code == 2
        assert "--workers" in capsys.readouterr().err

    def test_port_zero_prints_resolved_port(
        self, dataset_dir, capsys, monkeypatch
    ):
        """`serve --port 0` logs the *bound* port in the startup line —
        the line CI greps the base URL out of."""
        def fake_serve_forever(server):
            server.server_close()

        monkeypatch.setattr(
            "repro.service.serve_forever", fake_serve_forever
        )
        code = main([
            "serve", "--data", str(dataset_dir), "--port", "0", "--small",
        ])
        assert code == 0
        line = capsys.readouterr().out.splitlines()[0]
        assert line.startswith(f"serving {dataset_dir} on http://127.0.0.1:")
        port = int(line.rsplit(":", 1)[1])
        assert port > 0


class TestLoadtestParser:
    def test_defaults(self):
        args = _build_parser().parse_args(["loadtest", "http://x:1"])
        assert args.url == "http://x:1"
        assert args.duration is None
        assert args.requests is None
        assert args.concurrency == 8
        assert args.client_procs == 1
        assert args.seed == 2022
        assert args.bench_out is None
        assert args.baseline is None
        assert args.min_speedup is None
        for name in ("slo_p50_ms", "slo_p95_ms", "slo_p99_ms",
                     "slo_error_rate", "slo_min_rps"):
            assert getattr(args, name) is None

    def test_all_flags(self):
        args = _build_parser().parse_args([
            "loadtest", "http://x:1", "--duration", "5",
            "--concurrency", "16", "--client-procs", "2",
            "--seed", "7", "--top-sites", "50",
            "--slo-p95-ms", "100", "--slo-error-rate", "0.01",
            "--slo-min-rps", "200", "--bench-out", "B.json",
            "--baseline", "A.json", "--min-speedup", "2.0",
        ])
        assert args.duration == 5.0
        assert args.concurrency == 16
        assert args.client_procs == 2
        assert args.slo_p95_ms == 100.0
        assert args.slo_error_rate == 0.01
        assert args.min_speedup == 2.0

    def test_unreachable_server_exits_2(self, capsys):
        code = main([
            "loadtest", "http://127.0.0.1:1", "--timeout", "0.5",
            "--requests", "1",
        ])
        assert code == 2
        assert "cannot reach" in capsys.readouterr().err

    def test_missing_baseline_exits_2(self, tmp_path, capsys):
        code = main([
            "loadtest", "http://127.0.0.1:1",
            "--baseline", str(tmp_path / "absent.json"),
        ])
        assert code == 2
        assert "baseline" in capsys.readouterr().err


class TestTraceFlag:
    def test_parsers_accept_trace(self):
        for command in (
            ["generate", "--out", "x"],
            ["report", "--data", "ds", "--out", "run"],
            ["serve", "--data", "ds"],
        ):
            args = _build_parser().parse_args(command + ["--trace", "t.jsonl"])
            assert args.trace == "t.jsonl"
            assert _build_parser().parse_args(command).trace is None

    def test_generate_trace_covers_engine_slices(self, tmp_path, capsys):
        trace = tmp_path / "gen.jsonl"
        assert main([
            "generate", "--small", "--out", str(tmp_path / "ds"),
            "--countries", "US", "--platforms", "windows",
            "--metrics", "page_loads", "--trace", str(trace),
        ]) == 0
        assert f"wrote trace {trace}" in capsys.readouterr().out
        spans = [json.loads(line) for line in trace.read_text().splitlines()]
        names = {s["name"] for s in spans}
        assert "engine.run" in names
        slices = [s for s in spans if s["name"] == "engine.generate_slice"]
        assert [s["attrs"]["cache"] for s in slices] == ["miss"]

    def test_report_trace_covers_every_pipeline_task(
        self, dataset_dir, tmp_path, capsys
    ):
        trace = tmp_path / "rep.jsonl"
        assert main([
            "report", "--data", str(dataset_dir),
            "--out", str(tmp_path / "run"), "--no-artifacts", "--small",
            "--tasks", "concentration", "--trace", str(trace),
        ]) == 0
        assert f"wrote trace {trace}" in capsys.readouterr().out
        spans = [json.loads(line) for line in trace.read_text().splitlines()]
        (run,) = [s for s in spans if s["name"] == "pipeline.run"]
        tasks = [s for s in spans if s["name"] == "pipeline.task"]
        assert len(tasks) == run["attrs"]["tasks"] >= 1
        assert all(t["parent"] == run["span"] for t in tasks)
        assert {t["attrs"]["task"] for t in tasks} >= {"concentration"}


class TestTraceSummarize:
    def test_summarizes_a_report_trace(self, dataset_dir, tmp_path, capsys):
        trace = tmp_path / "rep.jsonl"
        assert main([
            "report", "--data", str(dataset_dir),
            "--out", str(tmp_path / "run"), "--no-artifacts", "--small",
            "--tasks", "concentration", "--trace", str(trace),
        ]) == 0
        capsys.readouterr()
        assert main(["trace", "summarize", str(trace), "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "slowest spans" in out
        assert "by span name" in out
        assert "pipeline.task" in out

    def test_missing_file_exits_2(self, tmp_path, capsys):
        assert main(["trace", "summarize", str(tmp_path / "nope.jsonl")]) == 2
        assert "no trace file" in capsys.readouterr().err

    def test_empty_trace_exits_1(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert main(["trace", "summarize", str(empty)]) == 1
        assert "no spans" in capsys.readouterr().err

    def test_malformed_trace_exits_1(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("this is not json\n")
        assert main(["trace", "summarize", str(bad)]) == 1
        assert "malformed" in capsys.readouterr().err


class TestIngestCLI:
    @pytest.fixture(scope="class")
    def growable_dir(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("ingest-cli") / "ds"
        assert main([
            "generate", "--small", "--out", str(out),
            "--countries", "US", "--months", "2021-09",
        ]) == 0
        return out

    def test_parser_shares_the_generate_vocabulary(self):
        args = _build_parser().parse_args([
            "ingest", "--data", "ds", "--month", "2021-10",
        ])
        assert [str(m) for m in args.months] == ["2021-10"]
        assert args.format is None and args.jobs == 1

    def test_ingest_bumps_the_version(self, growable_dir, capsys):
        assert main([
            "ingest", "--data", str(growable_dir),
            "--months", "2021-10", "--small",
        ]) == 0
        out = capsys.readouterr().out
        assert "ingested 2021-10" in out
        assert "dataset version 1 -> 2" in out

    def test_reingest_reports_the_noop(self, growable_dir, capsys):
        assert main([
            "ingest", "--data", str(growable_dir),
            "--months", "2021-10", "--small",
        ]) == 0
        out = capsys.readouterr().out
        assert "nothing to ingest" in out
        assert "still version 2" in out

    def test_analyze_as_of_selects_the_old_version(self, growable_dir, capsys):
        assert main([
            "analyze", "--data", str(growable_dir),
            "--analysis", "concentration", "--small", "--as-of", "1",
        ]) == 0
        assert capsys.readouterr().out

    def test_unknown_as_of_exits_2_with_choices(self, growable_dir, capsys):
        assert main([
            "analyze", "--data", str(growable_dir),
            "--analysis", "concentration", "--small", "--as-of", "9",
        ]) == 2
        err = capsys.readouterr().err
        assert "unknown dataset version 9" in err
        assert "available versions: 1, 2" in err

    def test_missing_dataset_exits_2(self, tmp_path, capsys):
        assert main([
            "ingest", "--data", str(tmp_path / "nope"),
            "--months", "2021-10",
        ]) == 2
        assert capsys.readouterr().err


class TestIngestAdjacentConventions:
    def test_generate_accepts_data_as_an_out_alias(self):
        args = _build_parser().parse_args(["generate", "--data", "somewhere"])
        assert args.out == "somewhere"

    def test_convert_accepts_flag_form(self, dataset_dir, tmp_path, capsys):
        dst = tmp_path / "col"
        assert main([
            "convert", "--data", str(dataset_dir), "--out", str(dst),
        ]) == 0
        assert (dst / "manifest.bin").is_file()
        assert "converted" in capsys.readouterr().out

    def test_convert_without_source_exits_2(self, capsys):
        assert main(["convert"]) == 2
        assert "--data SRC --out DST" in capsys.readouterr().err

    def test_as_of_flag_everywhere(self):
        for command in (
            ["analyze", "--data", "d", "--analysis", "concentration"],
            ["report", "--data", "d", "--out", "o"],
            ["serve", "--data", "d"],
        ):
            args = _build_parser().parse_args(command + ["--as-of", "3"])
            assert args.as_of == 3

    def test_store_is_canonical_with_artifacts_as_alias(self):
        args = _build_parser().parse_args([
            "report", "--data", "d", "--out", "o", "--store", "s",
        ])
        assert args.store == "s" and args.artifacts is None
        legacy = _build_parser().parse_args([
            "serve", "--data", "d", "--artifacts", "a",
        ])
        assert legacy.artifacts == "a" and legacy.store is None
