"""Shared fixtures: one small-universe generator per test session.

The small configuration (≈120K-site universe, 1.5K-site lists) builds in
a couple of seconds and is shared session-wide; tests must treat the
generator, datasets and label maps as read-only.
"""

from __future__ import annotations

import pytest

from repro.core import Metric, Platform, REFERENCE_MONTH, STUDY_MONTHS
from repro.synth import GeneratorConfig, TelemetryGenerator


@pytest.fixture(scope="session")
def generator() -> TelemetryGenerator:
    return TelemetryGenerator(GeneratorConfig.small())


@pytest.fixture(scope="session")
def labels(generator) -> dict[str, str]:
    return generator.site_categories()


@pytest.fixture(scope="session")
def reference_dataset(generator):
    """Both platforms and metrics for the reference month, all countries."""
    return generator.generate(
        platforms=Platform.studied(),
        metrics=Metric.studied(),
        months=(REFERENCE_MONTH,),
    )


@pytest.fixture(scope="session")
def monthly_dataset(generator):
    """Windows page loads over all six study months, a country subset."""
    return generator.generate(
        countries=("US", "BR", "JP", "FR", "NG", "KR", "IN", "MX"),
        platforms=(Platform.WINDOWS,),
        metrics=(Metric.PAGE_LOADS,),
        months=STUDY_MONTHS,
    )
