"""Tests for the repro.api facade and the top-level re-exports."""

import json
import threading
import urllib.request
import warnings

import pytest

import repro
import repro.api
from repro.core import Metric, Month, Platform, REFERENCE_MONTH


@pytest.fixture()
def clear_deprecation_memo():
    """Warn-once aliases memoize; reset so each test observes its warning."""
    from repro import _compat

    _compat._warned.clear()
    yield
    _compat._warned.clear()


@pytest.fixture(scope="module")
def facade_dataset(generator):
    return generator.generate(
        countries=("US",),
        platforms=(Platform.WINDOWS,),
        metrics=(Metric.PAGE_LOADS,),
        months=(REFERENCE_MONTH,),
    )


class TestReExports:
    def test_the_five_verbs_are_top_level(self):
        for verb in ("analyze", "generate", "load", "report", "serve"):
            assert callable(getattr(repro, verb))
            assert getattr(repro, verb) is getattr(repro.api, verb)

    def test_report_function_shadows_but_does_not_break_the_submodule(self):
        import sys

        assert repro.report is repro.api.report  # attribute: the facade verb
        # The submodule stays pinned in sys.modules, so module-path
        # imports keep resolving to the rendering module.
        report_module = sys.modules["repro.report"]
        assert hasattr(report_module, "render_table")
        from repro.report import render_table

        assert render_table is report_module.render_table

    def test_core_types_still_re_exported(self):
        assert repro.Platform is Platform
        assert repro.Month is Month


class TestGenerate:
    def test_string_coercion_matches_enum_spelling(self, generator):
        via_strings = repro.generate(
            config=generator.config,
            countries=("US",),
            platforms=("windows",),
            metrics=("page_loads",),
            months=("2022-02",),
        )
        via_enums = repro.generate(
            config=generator.config,
            countries=("US",),
            platforms=(Platform.WINDOWS,),
            metrics=(Metric.PAGE_LOADS,),
            months=(REFERENCE_MONTH,),
        )
        from repro.export.io import dataset_fingerprint

        assert dataset_fingerprint(via_strings) == dataset_fingerprint(via_enums)

    def test_lazy_generation_defers_slices(self, generator):
        dataset = repro.generate(
            config=generator.config,
            countries=("US", "FR"),
            platforms=("windows",),
            metrics=("page_loads",),
            lazy=True,
        )
        assert dataset.pending == 2

    def test_lazy_plus_out_is_rejected(self, generator, tmp_path):
        with pytest.raises(ValueError, match="lazy"):
            repro.generate(config=generator.config, lazy=True,
                           out=tmp_path / "data")

    def test_roundtrip_through_out_and_load(self, generator, tmp_path):
        out = tmp_path / "data"
        dataset = repro.generate(
            config=generator.config,
            countries=("US",),
            platforms=("windows",),
            metrics=("page_loads",),
            out=out,
        )
        from repro.export.io import dataset_fingerprint

        loaded = repro.load(out)
        assert dataset_fingerprint(loaded) == dataset_fingerprint(dataset)

    def test_load_passes_datasets_through(self, facade_dataset):
        assert repro.load(facade_dataset) is facade_dataset


class TestAnalyze:
    def test_returns_the_task_result(self, facade_dataset, generator):
        result = repro.analyze(
            facade_dataset, "concentration", config=generator.config
        )
        assert result  # JSON-shaped task output

    def test_unknown_task_raises(self, facade_dataset, generator):
        with pytest.raises(Exception, match="unknown"):
            repro.analyze(facade_dataset, "nope", config=generator.config)


class TestReport:
    def test_writes_a_run_dir(self, facade_dataset, generator, tmp_path):
        run = repro.report(
            facade_dataset,
            tmp_path / "run",
            tasks=("concentration",),
            config=generator.config,
        )
        assert run.ok
        assert (tmp_path / "run").is_dir()
        assert any((tmp_path / "run").iterdir())


class TestServe:
    def test_non_blocking_server_answers_healthz(self, facade_dataset, generator):
        server = repro.serve(
            facade_dataset, port=0, config=generator.config, block=False
        )
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            with urllib.request.urlopen(
                server.url + "/v1/healthz", timeout=10
            ) as response:
                payload = json.loads(response.read())
            assert response.status == 200
            assert payload["status"] == "ok"
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)


class TestParameterConventions:
    def test_engine_grid_is_keyword_only(self, generator):
        from repro.engine import GenerationEngine

        engine = GenerationEngine(generator.config)
        with pytest.raises(TypeError):
            engine.generate(("US",))

    def test_engine_rejects_jobs_and_executor_together(self, generator):
        from repro.core import GenerationError
        from repro.engine import GenerationEngine, SerialExecutor

        with pytest.raises(GenerationError, match="not both"):
            GenerationEngine(
                generator.config, executor=SerialExecutor(), jobs=2
            )

    def test_cache_dir_alias_warns_once(
        self, generator, tmp_path, clear_deprecation_memo
    ):
        from repro.engine import GenerationEngine

        with pytest.warns(DeprecationWarning, match="cache_dir"):
            engine = GenerationEngine(generator.config, cache_dir=tmp_path)
        assert engine.cache is not None
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # second use: no warning
            GenerationEngine(generator.config, cache_dir=tmp_path)

    def test_cache_and_cache_dir_together_is_an_error(
        self, generator, tmp_path, clear_deprecation_memo
    ):
        from repro.engine import GenerationEngine

        with pytest.raises(TypeError, match="cache"):
            GenerationEngine(
                generator.config, cache=tmp_path, cache_dir=tmp_path
            )

    def test_run_pipeline_artifacts_alias_warns(
        self, facade_dataset, generator, tmp_path, clear_deprecation_memo
    ):
        from repro.pipeline import run_pipeline

        with pytest.warns(DeprecationWarning, match="artifacts"):
            run = run_pipeline(
                facade_dataset,
                ["concentration"],
                artifacts=tmp_path / "store",
                config=generator.config,
            )
        assert run.ok
