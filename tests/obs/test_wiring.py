"""Tracing wired through the engine and pipeline layers.

The serving-layer wiring (``http.request`` spans, the ``trace`` block
in ``/v1/metrics``) is covered next to the other HTTP tests in
``tests/service/test_http.py``.
"""

import pytest

from repro.core import Metric, Platform
from repro.engine import GenerationEngine, ParallelExecutor, SliceCache
from repro.obs import NULL_TRACER, Tracer, set_tracer
from repro.pipeline import PipelineRunner, TaskContext, TaskRegistry


@pytest.fixture()
def tracer():
    """Install a fresh Tracer for one test; always restore the shim."""
    active = Tracer()
    previous = set_tracer(active)
    yield active
    set_tracer(previous)


def _by_name(tracer):
    spans = tracer.collector.snapshot()
    grouped: dict[str, list[dict]] = {}
    for span in spans:
        grouped.setdefault(span["name"], []).append(span)
    return grouped


GRID = {"platforms": (Platform.WINDOWS,), "metrics": (Metric.PAGE_LOADS,)}


class TestEngineTracing:
    def test_miss_then_hit_slice_spans(self, generator, tmp_path, tracer):
        cache = SliceCache(tmp_path / "slices")
        engine = GenerationEngine(
            generator.config, cache=cache, generator=generator
        )
        engine.generate(countries=("US",), **GRID)
        engine.generate(countries=("US",), **GRID)

        spans = _by_name(tracer)
        assert len(spans["engine.run"]) == 2
        cold, warm = spans["engine.run"]
        assert cold["counters"] == {"cache_misses": 1}
        assert warm["counters"] == {"cache_hits": 1}
        outcomes = [s["attrs"]["cache"] for s in spans["engine.generate_slice"]]
        assert outcomes == ["miss", "hit"]
        assert len(spans["engine.cache_write"]) == 1  # only the cold run

    def test_slice_spans_nest_under_engine_run(self, generator, tracer):
        engine = GenerationEngine(generator.config, generator=generator)
        engine.generate(countries=("US", "KR"), **GRID)

        spans = _by_name(tracer)
        (run,) = spans["engine.run"]
        slices = spans["engine.generate_slice"]
        assert {s["attrs"]["country"] for s in slices} == {"US", "KR"}
        assert all(s["parent"] == run["span"] for s in slices)
        assert all(s["attrs"]["cache"] == "miss" for s in slices)

    def test_uninstrumented_run_collects_nothing(self, generator):
        assert not NULL_TRACER.enabled
        engine = GenerationEngine(generator.config, generator=generator)
        engine.generate(countries=("US",), **GRID)  # must not raise

    def test_parallel_workers_spans_are_adopted(self, generator, tracer):
        engine = GenerationEngine(
            generator.config, executor=ParallelExecutor(jobs=2)
        )
        engine.generate(countries=("US", "KR"), **GRID)

        spans = _by_name(tracer)
        (run,) = spans["engine.run"]
        units = spans["engine.work_unit"]
        assert {u["attrs"]["country"] for u in units} == {"US", "KR"}
        assert all(u["parent"] == run["span"] for u in units)
        unit_ids = {u["span"] for u in units}
        slices = spans["engine.generate_slice"]
        assert len(slices) == 2
        assert {s["parent"] for s in slices} <= unit_ids
        # Worker ids are pid-prefixed, so two pools can never collide.
        assert all(u["span"].startswith("w") for u in units)
        assert all(
            s["trace"] == tracer.trace_id
            for s in tracer.collector.snapshot()
        )


class TestPipelineTracing:
    def _registry(self) -> TaskRegistry:
        registry = TaskRegistry()

        @registry.task("base")
        def base(ctx, inputs):
            return {"value": 1}

        @registry.task("boom", deps=("base",))
        def boom(ctx, inputs):
            raise RuntimeError("exploded")

        @registry.task("downstream", deps=("boom",))
        def downstream(ctx, inputs):  # pragma: no cover - never runs
            return {}

        return registry

    def test_task_spans_carry_status_and_store(
        self, reference_dataset, tracer
    ):
        runner = PipelineRunner(self._registry())
        runner.run(TaskContext(reference_dataset))

        spans = _by_name(tracer)
        (run,) = spans["pipeline.run"]
        assert run["attrs"]["tasks"] == 3
        assert run["counters"]["executed"] == 1
        assert run["counters"]["failed"] == 1
        assert run["counters"]["skipped"] == 1
        by_task = {s["attrs"]["task"]: s for s in spans["pipeline.task"]}
        assert by_task["base"]["attrs"]["status"] == "ok"
        assert by_task["base"]["attrs"]["store"] == "off"
        assert by_task["boom"]["attrs"]["status"] == "failed"
        assert by_task["downstream"]["attrs"]["status"] == "skipped"
        assert by_task["downstream"]["attrs"]["reason"] == "dependency"
        assert all(
            s["parent"] == run["span"] for s in spans["pipeline.task"]
        )

    def test_store_hit_recorded_on_second_run(
        self, reference_dataset, tmp_path, tracer
    ):
        registry = TaskRegistry()

        @registry.task("only")
        def only(ctx, inputs):
            return {"value": 7}

        runner = PipelineRunner(registry, store=tmp_path / "artifacts")
        ctx = TaskContext(reference_dataset)
        runner.run(ctx)
        runner.run(ctx)

        tasks = _by_name(tracer)["pipeline.task"]
        assert [t["attrs"].get("store") for t in tasks] == ["miss", "hit"]
        assert tasks[1]["attrs"]["status"] == "cached"
