"""Tests for repro.obs: spans, collectors, the shim, JSONL round-trips."""

import json
import threading

import pytest

from repro.obs import (
    NULL_TRACER,
    NullTracer,
    TraceCollector,
    Tracer,
    aggregate_spans,
    format_summary,
    get_tracer,
    read_trace,
    set_tracer,
    slowest_spans,
    tracing,
)


class TestSpanNesting:
    def test_child_parents_to_enclosing_span(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = tracer.collector.snapshot()
        assert inner["name"] == "inner"
        assert outer["name"] == "outer"
        assert outer["parent"] is None
        assert inner["parent"] == outer["span"]
        assert inner["trace"] == outer["trace"] == tracer.trace_id

    def test_siblings_share_a_parent(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        a, b, root = tracer.collector.snapshot()
        assert a["parent"] == b["parent"] == root["span"]
        assert a["span"] != b["span"]

    def test_current_tracks_the_stack(self):
        tracer = Tracer()
        assert tracer.current is None
        with tracer.span("outer") as outer:
            assert tracer.current is outer
            with tracer.span("inner") as inner:
                assert tracer.current is inner
            assert tracer.current is outer
        assert tracer.current is None

    def test_attrs_and_counters_round_trip(self):
        tracer = Tracer()
        with tracer.span("work", country="US") as span:
            span.set("platform", "windows")
            span.add("cache_hits")
            span.add("cache_hits", 2)
        (item,) = tracer.collector.snapshot()
        assert item["attrs"] == {"country": "US", "platform": "windows"}
        assert item["counters"] == {"cache_hits": 3}

    def test_exception_marks_error_and_propagates(self):
        tracer = Tracer()
        with pytest.raises(ValueError, match="boom"):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise ValueError("boom")
        inner, outer = tracer.collector.snapshot()
        assert inner["status"] == outer["status"] == "error"
        assert inner["error"] == "ValueError: boom"
        assert tracer.current is None  # stack fully unwound

    def test_duration_is_monotonic_nonnegative(self):
        tracer = Tracer()
        with tracer.span("timed"):
            pass
        (item,) = tracer.collector.snapshot()
        assert item["duration_ms"] >= 0.0

    def test_record_backdates_and_parents(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            tracer.record("settled", 1.5, task="x")
        settled, _ = tracer.collector.snapshot()
        assert settled["duration_ms"] == 1500.0
        assert settled["parent"] == root.span_id
        assert settled["attrs"] == {"task": "x"}


class TestThreadSafety:
    def test_per_thread_stacks_stay_independent(self):
        tracer = Tracer()
        barrier = threading.Barrier(4)
        failures = []

        def work(tag):
            try:
                barrier.wait()
                for i in range(50):
                    with tracer.span(f"{tag}") as outer:
                        with tracer.span(f"{tag}.child") as child:
                            if child.parent_id != outer.span_id:
                                failures.append((tag, i))
            except Exception as exc:  # pragma: no cover - debug aid
                failures.append(exc)

        threads = [
            threading.Thread(target=work, args=(f"t{n}",)) for n in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not failures
        spans = tracer.collector.snapshot()
        assert len(spans) == 4 * 50 * 2
        ids = [s["span"] for s in spans]
        assert len(set(ids)) == len(ids)  # globally unique despite racing

    def test_collector_concurrent_append_and_drain(self):
        collector = TraceCollector()
        barrier = threading.Barrier(4)

        def feed():
            barrier.wait()
            for i in range(200):
                collector.append({"i": i})

        threads = [threading.Thread(target=feed) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        drained = collector.drain()
        assert len(drained) == 800
        assert len(collector) == 0


class TestAdoption:
    def test_worker_spans_reparent_under_active_span(self):
        worker = Tracer(span_prefix="w7-")
        with worker.span("engine.work_unit"):
            with worker.span("engine.generate_slice"):
                pass
        shipped = worker.collector.drain()

        parent = Tracer()
        with parent.span("engine.run") as root:
            adopted = parent.adopt(shipped)
        assert adopted == 2
        spans = {s["name"]: s for s in parent.collector.snapshot()}
        unit = spans["engine.work_unit"]
        child = spans["engine.generate_slice"]
        assert unit["parent"] == root.span_id  # root re-parented
        assert child["parent"] == unit["span"]  # internal links kept
        assert unit["span"].startswith("w7-")
        assert all(
            s["trace"] == parent.trace_id
            for s in parent.collector.snapshot()
        )


class TestNullShim:
    def test_null_span_is_reused_and_inert(self):
        tracer = NullTracer()
        first = tracer.span("a", country="US")
        second = tracer.span("b")
        assert first is second  # one shared no-op instance
        with first as span:
            assert span.set("k", "v") is span
            assert span.add("n", 5) is span

    def test_null_tracer_surface(self):
        assert NULL_TRACER.enabled is False
        assert NULL_TRACER.current is None
        assert NULL_TRACER.record("x", 1.0) is None
        assert NULL_TRACER.adopt([{"span": "1"}]) == 0
        assert NULL_TRACER.snapshot() == {"enabled": False}

    def test_null_span_swallows_nothing(self):
        with pytest.raises(RuntimeError):
            with NULL_TRACER.span("x"):
                raise RuntimeError("through")

    def test_default_active_tracer_is_the_shim(self):
        assert get_tracer() is NULL_TRACER


class TestTracingScope:
    def test_none_path_is_transparent(self, tmp_path):
        before = get_tracer()
        with tracing(None) as tracer:
            assert tracer is before
            assert get_tracer() is before
        assert get_tracer() is before

    def test_installs_writes_and_restores(self, tmp_path):
        path = tmp_path / "out.jsonl"
        with tracing(path) as tracer:
            assert get_tracer() is tracer
            assert tracer.enabled
            with tracer.span("scoped"):
                pass
        assert get_tracer() is NULL_TRACER
        (span,) = read_trace(path)
        assert span["name"] == "scoped"

    def test_restores_previous_even_on_error(self, tmp_path):
        path = tmp_path / "err.jsonl"
        with pytest.raises(KeyError):
            with tracing(path):
                with get_tracer().span("doomed"):
                    raise KeyError("x")
        assert get_tracer() is NULL_TRACER
        (span,) = read_trace(path)
        assert span["status"] == "error"

    def test_set_tracer_returns_previous(self):
        mine = Tracer()
        previous = set_tracer(mine)
        try:
            assert get_tracer() is mine
        finally:
            assert set_tracer(previous) is mine
        assert get_tracer() is previous


class TestJsonlRoundTrip:
    def test_write_then_read_preserves_spans(self, tmp_path):
        tracer = Tracer()
        with tracer.span("outer", month="2022-02"):
            with tracer.span("inner") as inner:
                inner.add("rows", 42)
        path = tracer.write(tmp_path / "trace.jsonl")
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2
        for line in lines:
            json.loads(line)  # every line is self-contained JSON
        assert read_trace(path) == tracer.collector.snapshot()

    def test_read_skips_blank_lines(self, tmp_path):
        path = tmp_path / "gaps.jsonl"
        path.write_text('{"name": "a"}\n\n{"name": "b"}\n\n')
        assert [s["name"] for s in read_trace(path)] == ["a", "b"]

    def test_snapshot_block_shape(self):
        tracer = Tracer()
        with tracer.span("one"):
            pass
        assert tracer.snapshot() == {
            "enabled": True,
            "trace_id": tracer.trace_id,
            "spans": 1,
        }


class TestSummary:
    def _spans(self):
        return [
            {"trace": "t1", "name": "slow", "duration_ms": 30.0,
             "status": "ok", "attrs": {"task": "has_app"}},
            {"trace": "t1", "name": "fast", "duration_ms": 1.0,
             "status": "error"},
            {"trace": "t1", "name": "fast", "duration_ms": 3.0,
             "status": "ok"},
        ]

    def test_slowest_spans_rank_and_detail(self):
        rows = slowest_spans(self._spans(), top=2)
        assert [r[0] for r in rows] == ["slow", "fast"]
        assert rows[0][3] == "task=has_app"

    def test_aggregate_orders_by_total(self):
        rows = aggregate_spans(self._spans())
        assert rows[0][:3] == ("slow", "1", "30.000")
        assert rows[1][:3] == ("fast", "2", "4.000")

    def test_format_summary_header(self):
        text = format_summary(self._spans(), top=2)
        assert "3 spans across 1 trace(s), 1 error(s)" in text
        assert "top 2 slowest spans" in text
        assert "by span name" in text
