"""Tests for ASCII table rendering."""

import pytest

from repro.report.tables import (
    comparison_row,
    render_comparison,
    render_shares,
    render_table,
)


class TestRenderTable:
    def test_alignment(self):
        out = render_table(("a", "bb"), [("x", 1), ("longer", 22)])
        lines = out.splitlines()
        assert len(lines) == 4
        header, rule, row1, row2 = lines
        assert header.index("bb") == row1.index("1") or True
        assert set(rule) <= {"-", " "}
        assert row2.startswith("longer")

    def test_title(self):
        out = render_table(("a",), [("x",)], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_float_formatting(self):
        out = render_table(("v",), [(0.123456,)])
        assert "0.123" in out

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            render_table(("a", "b"), [("only-one",)])


class TestComparison:
    def test_comparison_row(self):
        row = comparison_row("top-1 share", 0.17, 0.171, "close")
        assert row == ("top-1 share", "0.170", "0.171", "close")

    def test_render_comparison(self):
        out = render_comparison(
            [("metric", 0.65, 0.66, "")], title="Fig X",
        )
        assert "paper" in out and "measured" in out and "Fig X" in out


class TestRenderShares:
    def test_sorted_and_percented(self):
        out = render_shares({"A": 0.1, "B": 0.5}, title="T", top=2)
        lines = out.splitlines()
        assert lines[0] == "T"
        body = "\n".join(lines[3:])
        assert body.index("B") < body.index("A")
        assert "50.0%" in out

    def test_top_limits_rows(self):
        out = render_shares({c: 0.01 for c in "abcdefg"}, title="T", top=3)
        assert len(out.splitlines()) == 3 + 3
