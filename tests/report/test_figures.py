"""Tests for ASCII figure rendering."""

import numpy as np
import pytest

from repro.report.figures import render_heatmap, render_series, sparkline


class TestSparkline:
    def test_length_matches_input(self):
        assert len(sparkline([1, 2, 3])) == 3

    def test_monotone_series_monotone_blocks(self):
        line = sparkline([0, 1, 2, 3, 4, 5, 6, 7, 8])
        assert list(line) == sorted(line, key=" ▁▂▃▄▅▆▇█".index)

    def test_constant_series(self):
        assert sparkline([5, 5, 5]) == "▄▄▄"

    def test_empty(self):
        assert sparkline([]) == ""

    def test_explicit_bounds(self):
        clipped = sparkline([0.5], lo=0.0, hi=1.0)
        assert clipped in "▃▄▅"


class TestRenderSeries:
    def test_includes_labels_and_values(self):
        out = render_series({"desktop": [0.6, 0.7]}, title="Overlap")
        assert "Overlap" in out
        assert "desktop" in out
        assert "0.60 → 0.70" in out

    def test_x_labels(self):
        out = render_series({"s": [1.0]}, x_labels=["jan"], title=None)
        assert "jan" in out

    def test_skips_empty_series(self):
        out = render_series({"empty": []})
        assert "empty" not in out


class TestRenderHeatmap:
    def test_structure(self):
        m = np.array([[1.0, 0.2], [0.2, 1.0]])
        out = render_heatmap(["US", "BR"], m, title="RBO")
        lines = out.splitlines()
        assert lines[0] == "RBO"
        assert lines[2].startswith("US")
        assert lines[3].startswith("BR")

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            render_heatmap(["A"], np.zeros((2, 2)))
