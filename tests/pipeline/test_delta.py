"""Delta invalidation: one ingested month re-executes only what it must.

The tentpole guarantee of incremental ingestion, asserted by executed-
task counts: with the reference month pinned, tasks that read a single
month keep their warm artifacts across an ingest, tasks declared
``reads="all-months"`` re-execute (their month set changed), and their
dependents re-execute only when the dependency's *result* actually
changed (Merkle-style early cutoff through result digests).
"""

from __future__ import annotations

import pytest

from repro.core import Metric, Month, Platform
from repro.export.io import load_dataset, save_dataset
from repro.pipeline import TaskStatus, run_pipeline
from repro.store import ingest_months
from repro.synth import GeneratorConfig

COUNTRIES = ("US", "DE", "IN", "BR", "JP", "FR")
MONTHS = (Month(2021, 9), Month(2021, 10), Month(2021, 11))
NEW_MONTH = Month(2021, 12)
PIN = MONTHS[-1]
CONFIG = GeneratorConfig.small()

#: Tasks that fold the dataset's month set into their cache key.
ALL_MONTHS_READERS = {"labels", "tags", "has_app", "temporal"}


@pytest.fixture(scope="module")
def delta(generator, tmp_path_factory):
    """Cold run -> ingest one month -> warm run, sharing one store."""
    tmp = tmp_path_factory.mktemp("delta")
    root = tmp / "data"
    store = tmp / "store"
    dataset = generator.generate(
        countries=COUNTRIES, platforms=Platform.studied(),
        metrics=Metric.studied(), months=MONTHS,
    )
    save_dataset(dataset, root, format="columnar")

    cold = run_pipeline(
        load_dataset(root), store=store, config=CONFIG, month=PIN
    )
    ingest_months(root, [NEW_MONTH], config=CONFIG)
    warm = run_pipeline(
        load_dataset(root), store=store, config=CONFIG, month=PIN
    )
    again = run_pipeline(
        load_dataset(root), store=store, config=CONFIG, month=PIN
    )
    return cold, warm, again


class TestDeltaInvalidation:
    def test_cold_run_executes_everything(self, delta):
        cold, _, _ = delta
        assert cold.ok
        assert cold.cached == 0
        assert cold.executed == len(cold.records)

    def test_ingest_reexecutes_only_month_touching_tasks(self, delta):
        cold, warm, _ = delta
        assert warm.ok
        reran = {
            name for name, record in warm.records.items()
            if record.status is TaskStatus.OK
        }
        cached = {
            name for name, record in warm.records.items()
            if record.status is TaskStatus.CACHED
        }
        # Every all-months reader saw its month set change.
        assert ALL_MONTHS_READERS <= reran
        # The delta is a strict subset: warm artifacts survived.
        assert warm.executed < cold.executed
        assert warm.executed + warm.cached == cold.executed
        # Month-pinned tasks with no invalidated dependency stay warm.
        for name in ("concentration", "similarity", "south_patterns"):
            assert name in cached, name

    def test_dependents_rerun_only_on_changed_digests(self, delta):
        _, warm, _ = delta
        reran = {
            name for name, record in warm.records.items()
            if record.status is TaskStatus.OK
        }
        # labels grew with the new month's sites, so its direct
        # consumers re-ran ...
        assert {"composition", "prevalence", "top10"} <= reran
        # ... but south_patterns depends on tags, whose *result* was
        # unchanged by the new month — early cutoff keeps it cached.
        assert warm.records["south_patterns"].status is TaskStatus.CACHED

    def test_rerun_without_changes_is_fully_cached(self, delta):
        _, warm, again = delta
        assert again.ok
        assert again.executed == 0
        assert again.cached == len(again.records)
        assert again.results == warm.results
