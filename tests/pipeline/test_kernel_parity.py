"""Artifact bytes are unchanged by the kernel rewiring.

The vectorized kernels must be *bit-identical* to the scalar reference
so content-addressed artifact stores stay warm across the change.  Each
test recomputes a task's result dict with the pre-kernel scalar loops
(per-pair ``weighted_rbo``, truncated-list ``percent_intersection`` /
``spearman_from_lists``) and compares the serialized artifact bytes
against the live task's output.
"""

from itertools import combinations

import numpy as np
import pytest

from repro.pipeline import artifact_bytes, default_registry
from repro.pipeline.tasks import _f, _q
from repro.stats.descriptive import quartiles
from repro.stats.rbo import weighted_rbo
from repro.stats.spearman import spearman_from_lists


def run_task(name, ctx, inputs=None):
    return default_registry().get(name).fn(ctx, inputs or {})


def scalar_wrbo_matrix(lists, distribution, depth):
    """The pre-kernel matrix loop, verbatim."""
    countries = tuple(sorted(lists))
    n = len(countries)
    values = np.eye(n)
    max_depth = min(depth, min(len(lists[c]) for c in countries))
    weights = distribution.weights(max_depth)
    for i, j in combinations(range(n), 2):
        score = weighted_rbo(
            lists[countries[i]], lists[countries[j]], weights, depth=max_depth
        )
        values[i, j] = values[j, i] = score
    return countries, values


class TestSimilarityBytes:
    def test_unchanged(self, pipeline_ctx):
        got = run_task("similarity", pipeline_ctx)
        lists = pipeline_ctx.primary_lists()
        distribution = pipeline_ctx.dataset.distribution(
            pipeline_ctx.primary_platform, pipeline_ctx.primary_metric
        )
        countries, values = scalar_wrbo_matrix(lists, distribution, 10_000)
        want = {
            "platform": pipeline_ctx.primary_platform.value,
            "metric": pipeline_ctx.primary_metric.value,
            "depth": 10_000,
            "countries": list(countries),
            "values": [[_f(v) for v in row] for row in values.tolist()],
        }
        assert (
            artifact_bytes("similarity", "parity", got)
            == artifact_bytes("similarity", "parity", want)
        )


def scalar_month_pair(dataset, platform, metric, month_a, month_b, bucket):
    """Pre-kernel month_pair_similarity: truncated lists + rank dicts."""
    lists_a = dataset.select(platform, metric, month_a)
    lists_b = dataset.select(platform, metric, month_b)
    shared = sorted(set(lists_a) & set(lists_b))
    intersections = []
    rhos = []
    for country in shared:
        a = lists_a[country].top(bucket)
        b = lists_b[country].top(bucket)
        intersections.append(a.percent_intersection(b))
        rho = spearman_from_lists(a, b)
        if rho == rho:
            rhos.append(rho)
    return {
        "month_a": str(month_a),
        "month_b": str(month_b),
        "intersection": _q(quartiles(intersections)),
        "spearman": _q(quartiles(rhos or [float("nan")])),
    }


class TestTemporalBytes:
    def test_unchanged(self, pipeline_ctx):
        from repro.analysis.temporal import DEFAULT_BUCKETS

        got = run_task("temporal", pipeline_ctx)
        dataset = pipeline_ctx.dataset
        platform = pipeline_ctx.primary_platform
        metric = pipeline_ctx.primary_metric
        months = dataset.months

        def series(pairs, bucket):
            return [
                scalar_month_pair(dataset, platform, metric, a, b, bucket)
                for a, b in pairs
            ]

        adjacent_pairs = list(zip(months, months[1:]))
        want_adjacent = [
            {"bucket": bucket, "pairs": series(adjacent_pairs, bucket)}
            for bucket in DEFAULT_BUCKETS
        ]
        anchor = months[0]
        want_anchored = series(
            [(anchor, m) for m in months if m > anchor], DEFAULT_BUCKETS[-1]
        )
        assert got["adjacent"] == want_adjacent
        assert got["anchored"] == want_anchored
        want = dict(got, adjacent=want_adjacent, anchored=want_anchored)
        assert (
            artifact_bytes("temporal", "parity", got)
            == artifact_bytes("temporal", "parity", want)
        )


class TestIntersectionsBytes:
    def test_unchanged(self, pipeline_ctx):
        got = run_task("intersections", pipeline_ctx)
        lists = pipeline_ctx.primary_lists()
        countries = sorted(lists)
        want_buckets = []
        for bucket in (10, 100, 1_000, 10_000):
            tops = {c: lists[c].top(bucket) for c in countries}
            values = [
                tops[a].percent_intersection(tops[b])
                for a, b in combinations(countries, 2)
            ]
            ordered = np.sort(np.asarray(values))[::-1]
            want_buckets.append({
                "bucket": bucket,
                "n_pairs": len(ordered),
                "mean": _f(ordered.mean()),
                "median": _f(quartiles(ordered).median),
            })
        want = dict(got, buckets=want_buckets)
        assert (
            artifact_bytes("intersections", "parity", got)
            == artifact_bytes("intersections", "parity", want)
        )


class TestMetricOverlapBytes:
    def test_unchanged(self, pipeline_ctx):
        import math

        got = run_task("overlap", pipeline_ctx)
        dataset = pipeline_ctx.dataset
        month = pipeline_ctx.month
        for entry in got["platforms"]:
            platform = next(
                p for p in dataset.platforms if p.value == entry["platform"]
            )
            from repro.core import Metric

            loads = dataset.select(platform, Metric.PAGE_LOADS, month)
            time = dataset.select(platform, Metric.TIME_ON_PAGE, month)
            shared = sorted(set(loads) & set(time))
            intersections = {}
            spearmans = {}
            for country in shared:
                a = loads[country].top(10_000)
                b = time[country].top(10_000)
                intersections[country] = a.percent_intersection(b)
                rho = spearman_from_lists(a, b)
                if not math.isnan(rho):
                    spearmans[country] = rho
            istats = quartiles(intersections.values())
            sstats = quartiles(spearmans.values())
            want_entry = dict(
                entry,
                intersection=_q(istats),
                spearman=_q(sstats),
                per_country_intersection={
                    c: _f(v) for c, v in sorted(intersections.items())
                },
            )
            assert (
                artifact_bytes("overlap", "parity", entry)
                == artifact_bytes("overlap", "parity", want_entry)
            )
