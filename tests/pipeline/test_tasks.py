"""The default registry run against a real (small) dataset."""

import pytest

from repro.pipeline import (
    ArtifactStore,
    PipelineRunner,
    TaskContext,
    TaskStatus,
    ThreadedTaskExecutor,
    default_registry,
    render_task,
    run_pipeline,
)


@pytest.fixture(scope="module")
def report(pipeline_ctx):
    """One serial run of the whole registry, shared by the checks below."""
    return PipelineRunner(default_registry()).run(pipeline_ctx)


class TestRegistryShape:
    def test_covers_the_historical_analyze_choices(self):
        names = set(default_registry().names())
        assert {"concentration", "composition", "overlap", "clusters"} <= names

    def test_ground_truth_feeds_composition_family(self):
        order = default_registry().topological_order()
        assert order.index("labels") < order.index("composition")
        assert order.index("labels") < order.index("prevalence")
        assert order.index("endemicity") < order.index("popularity_mix")
        assert order.index("similarity") < order.index("clusters")

    def test_registry_is_acyclic_and_nontrivial(self):
        registry = default_registry()
        assert len(registry.topological_order()) == len(registry) >= 15


class TestFullRun:
    def test_everything_succeeds_on_a_two_month_dataset(self, report):
        bad = {
            name: (rec.status.value, rec.error)
            for name, rec in report.records.items()
            if rec.status not in (TaskStatus.OK, TaskStatus.CACHED)
        }
        assert bad == {}

    def test_results_are_json_shaped(self, report):
        from repro.pipeline import canonical_json

        for name, result in report.results.items():
            canonical_json(result)  # raises on non-JSON values

    def test_renders_are_plain_text(self, report):
        registry = default_registry()
        rendered = {
            name: render_task(registry, report, name)
            for name in report.order
        }
        assert rendered["concentration"].startswith("Traffic concentration")
        assert "top-1 share" in rendered["concentration"]
        assert "median Spearman" in rendered["overlap"]
        assert "clusters" in rendered["clusters"]
        assert rendered["labels"] is None  # data-only task

    def test_labels_restricted_to_dataset_sites(self, report, pipeline_ctx):
        labels = report.results["labels"]
        assert labels  # non-empty
        assert set(labels) <= pipeline_ctx.sites()


class TestDeterminism:
    def test_parallel_artifacts_byte_identical_to_serial(
        self, pipeline_ctx, tmp_path
    ):
        registry = default_registry()
        serial_store = ArtifactStore(tmp_path / "serial")
        threaded_store = ArtifactStore(tmp_path / "threads")
        PipelineRunner(registry, store=serial_store).run(pipeline_ctx)
        PipelineRunner(
            registry, executor=ThreadedTaskExecutor(4), store=threaded_store
        ).run(pipeline_ctx)

        serial_files = {
            p.relative_to(serial_store.root): p.read_bytes()
            for p in serial_store.root.rglob("*.json")
        }
        threaded_files = {
            p.relative_to(threaded_store.root): p.read_bytes()
            for p in threaded_store.root.rglob("*.json")
        }
        assert serial_files == threaded_files
        assert len(serial_files) == len(registry)


class TestDegradedDatasets:
    def test_single_metric_dataset_skips_overlap_gracefully(self, generator):
        from repro.core import Metric, Platform

        dataset = generator.generate(
            countries=("US", "KR"),
            platforms=(Platform.WINDOWS,),
            metrics=(Metric.PAGE_LOADS,),
        )
        report = run_pipeline(
            dataset, ["overlap", "concentration"], config=generator.config
        )
        overlap = report.records["overlap"]
        assert overlap.status is TaskStatus.SKIPPED
        assert overlap.error == "dataset lacks both metrics"
        assert report.records["concentration"].status is TaskStatus.OK

    def test_unprovenanced_dataset_skips_ground_truth_only(
        self, pipeline_dataset
    ):
        ctx = TaskContext(pipeline_dataset)  # no config
        report = PipelineRunner(default_registry()).run(
            ctx, ["labels", "concentration"]
        )
        assert report.records["labels"].status is TaskStatus.SKIPPED
        assert report.records["concentration"].status is TaskStatus.OK
