"""Task identity: canonical JSON, parameter hashing, cache keys."""

from repro.core import Month
from repro.pipeline import Task, TaskContext, canonical_json, params_hash


def _noop(ctx, inputs):
    return {}


class TestCanonicalJson:
    def test_key_order_does_not_matter(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json({"a": 2, "b": 1})

    def test_compact_separators(self):
        assert canonical_json({"a": [1, 2]}) == '{"a":[1,2]}'


class TestParamsHash:
    def test_stable_and_short(self):
        digest = params_hash({"top_n": 10_000})
        assert digest == params_hash({"top_n": 10_000})
        assert len(digest) == 16

    def test_sensitive_to_params_and_extra(self):
        base = params_hash({"top_n": 10_000})
        assert params_hash({"top_n": 100}) != base
        assert params_hash({"top_n": 10_000}, extra="2022-02") != base


class TestTaskKey:
    def test_key_folds_in_month(self, pipeline_dataset):
        task = Task(name="t", fn=_noop, params={"k": 1})
        feb = TaskContext(pipeline_dataset, month=Month(2022, 2))
        dec = TaskContext(pipeline_dataset, month=Month(2021, 12))
        assert task.key(feb) != task.key(dec)
        assert task.key(feb) == task.key(TaskContext(pipeline_dataset))

    def test_context_key_folds_in_config(self, pipeline_ctx, pipeline_dataset):
        plain = Task(name="t", fn=_noop)
        keyed = Task(name="t", fn=_noop,
                     context_key=lambda ctx: ctx.config_fingerprint())
        unconfigured = TaskContext(pipeline_dataset)
        assert keyed.key(pipeline_ctx) != plain.key(pipeline_ctx)
        assert plain.key(unconfigured) == plain.key(pipeline_ctx)

    def test_heading_combines_title_and_section(self):
        assert Task(name="t", fn=_noop).heading == "t"
        task = Task(name="t", fn=_noop, title="Overlap", section="§4.4")
        assert task.heading == "Overlap (§4.4)"
