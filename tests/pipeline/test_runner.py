"""Runner semantics on toy DAGs: ordering, isolation, artifact reuse."""

import threading

import pytest

from repro.core.errors import PipelineError, TaskUnavailable
from repro.pipeline import (
    ArtifactStore,
    PipelineRunner,
    SerialTaskExecutor,
    TaskContext,
    TaskRegistry,
    TaskStatus,
    ThreadedTaskExecutor,
)


@pytest.fixture
def ctx(pipeline_dataset):
    return TaskContext(pipeline_dataset)


def _diamond(calls: list[str]) -> TaskRegistry:
    """base -> (left, right) -> top, recording execution order."""
    registry = TaskRegistry()

    @registry.task("base")
    def base(ctx, inputs):
        calls.append("base")
        return {"value": 1}

    @registry.task("left", deps=("base",))
    def left(ctx, inputs):
        calls.append("left")
        return {"value": inputs["base"]["value"] + 10}

    @registry.task("right", deps=("base",))
    def right(ctx, inputs):
        calls.append("right")
        return {"value": inputs["base"]["value"] + 20}

    @registry.task("top", deps=("left", "right"))
    def top(ctx, inputs):
        calls.append("top")
        return {"value": inputs["left"]["value"] + inputs["right"]["value"]}

    return registry


class TestDagExecution:
    def test_inputs_flow_along_edges(self, ctx):
        calls: list[str] = []
        report = PipelineRunner(_diamond(calls)).run(ctx)
        assert report.results["top"] == {"value": 32}
        assert calls.index("base") < calls.index("left")
        assert calls.index("base") < calls.index("right")
        assert calls[-1] == "top"

    def test_selection_runs_only_the_closure(self, ctx):
        calls: list[str] = []
        report = PipelineRunner(_diamond(calls)).run(ctx, ["left"])
        assert set(calls) == {"base", "left"}
        assert set(report.records) == {"base", "left"}

    def test_parallel_matches_serial(self, ctx):
        serial = PipelineRunner(_diamond([])).run(ctx)
        threaded = PipelineRunner(
            _diamond([]), executor=ThreadedTaskExecutor(4)
        ).run(ctx)
        assert serial.results == threaded.results
        assert serial.order == threaded.order

    def test_independent_tasks_share_a_wave(self, ctx):
        registry = TaskRegistry()
        barrier = threading.Barrier(2, timeout=10)

        @registry.task("a")
        def a(ctx, inputs):
            barrier.wait()
            return {}

        @registry.task("b")
        def b(ctx, inputs):
            barrier.wait()
            return {}

        # Both bodies block until the other has started: only truly
        # concurrent execution can pass the barrier.
        report = PipelineRunner(
            registry, executor=ThreadedTaskExecutor(2)
        ).run(ctx)
        assert report.executed == 2

    def test_bad_jobs_rejected(self):
        with pytest.raises(PipelineError, match="jobs"):
            ThreadedTaskExecutor(0)


class TestFailureIsolation:
    def _failing(self) -> TaskRegistry:
        registry = TaskRegistry()

        @registry.task("boom")
        def boom(ctx, inputs):
            raise ValueError("kaput")

        @registry.task("dependent", deps=("boom",))
        def dependent(ctx, inputs):
            return {}

        @registry.task("grand", deps=("dependent",))
        def grand(ctx, inputs):
            return {}

        @registry.task("bystander")
        def bystander(ctx, inputs):
            return {"fine": True}

        return registry

    def test_failure_skips_dependents_not_the_run(self, ctx):
        report = PipelineRunner(self._failing()).run(ctx)
        assert report.records["boom"].status is TaskStatus.FAILED
        assert report.records["boom"].error == "ValueError: kaput"
        assert report.records["dependent"].status is TaskStatus.SKIPPED
        assert "boom" in report.records["dependent"].error
        assert report.records["grand"].status is TaskStatus.SKIPPED
        assert report.records["bystander"].status is TaskStatus.OK
        assert report.results["bystander"] == {"fine": True}
        assert not report.ok

    def test_unavailable_counts_as_skip_not_failure(self, ctx):
        registry = TaskRegistry()

        @registry.task("maybe")
        def maybe(ctx, inputs):
            raise TaskUnavailable("dataset lacks the slice")

        report = PipelineRunner(registry).run(ctx)
        assert report.records["maybe"].status is TaskStatus.SKIPPED
        assert report.records["maybe"].error == "dataset lacks the slice"
        assert report.ok

    def test_unavailable_key_skips_before_running(self, pipeline_dataset):
        registry = TaskRegistry()

        @registry.task("needs_config",
                       context_key=lambda ctx: ctx.config_fingerprint())
        def needs_config(ctx, inputs):  # pragma: no cover - must not run
            raise AssertionError("body ran without a config")

        report = PipelineRunner(registry).run(TaskContext(pipeline_dataset))
        assert report.records["needs_config"].status is TaskStatus.SKIPPED
        assert "--small/--seed" in report.records["needs_config"].error


class TestArtifactReuse:
    def test_warm_run_executes_nothing(self, ctx, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        cold_calls: list[str] = []
        cold = PipelineRunner(_diamond(cold_calls), store=store).run(ctx)
        assert cold.executed == 4 and len(cold_calls) == 4

        warm_calls: list[str] = []
        warm = PipelineRunner(_diamond(warm_calls), store=store).run(ctx)
        assert warm_calls == []
        assert warm.executed == 0
        assert warm.cached == 4
        assert warm.results == cold.results

    def test_cached_results_feed_downstream_misses(self, ctx, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        cold = PipelineRunner(_diamond([]), store=store).run(ctx)
        # Drop one artifact: only that task re-executes, reading its
        # dependency from cache.  The stored key folds in dependency
        # digests, so read it off the run record.
        fingerprint = ctx.fingerprint
        top_key = cold.records["top"].key
        store.path_for(fingerprint, "top", top_key).unlink()
        calls: list[str] = []
        report = PipelineRunner(_diamond(calls), store=store).run(ctx)
        assert calls == ["top"]
        assert report.cached == 3
        assert report.results["top"] == {"value": 32}

    def test_failed_tasks_are_not_cached(self, ctx, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        registry = TaskRegistry()
        attempts: list[int] = []

        @registry.task("flaky")
        def flaky(ctx, inputs):
            attempts.append(1)
            raise ValueError("kaput")

        PipelineRunner(registry, store=store).run(ctx)
        PipelineRunner(registry, store=store).run(ctx)
        assert len(attempts) == 2
