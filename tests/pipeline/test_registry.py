"""Registry wiring: names, closure, deterministic topological order."""

import pytest

from repro.core.errors import PipelineError
from repro.pipeline import Task, TaskRegistry


def _noop(ctx, inputs):
    return {}


def _registry(edges: dict[str, tuple[str, ...]]) -> TaskRegistry:
    return TaskRegistry(
        Task(name=name, fn=_noop, deps=deps) for name, deps in edges.items()
    )


class TestWiring:
    def test_duplicate_name_rejected(self):
        registry = _registry({"a": ()})
        with pytest.raises(PipelineError, match="duplicate"):
            registry.add(Task(name="a", fn=_noop))

    def test_unknown_task_lists_known_names(self):
        registry = _registry({"a": (), "b": ()})
        with pytest.raises(PipelineError, match="a, b"):
            registry.get("zzz")

    def test_decorator_registers(self):
        registry = TaskRegistry()

        @registry.task("t", deps=(), params={"k": 1}, title="T")
        def body(ctx, inputs):
            return {}

        assert "t" in registry
        assert registry.get("t").fn is body
        assert len(registry) == 1


class TestClosure:
    def test_pulls_transitive_deps(self):
        registry = _registry({"a": (), "b": ("a",), "c": ("b",), "d": ()})
        assert registry.closure(["c"]) == {"a", "b", "c"}

    def test_none_means_everything(self):
        registry = _registry({"a": (), "b": ("a",)})
        assert registry.closure(None) == {"a", "b"}


class TestTopologicalOrder:
    def test_dependencies_come_first(self):
        registry = _registry({
            "render": ("mid",), "mid": ("base",), "base": (), "solo": (),
        })
        order = registry.topological_order()
        assert order.index("base") < order.index("mid") < order.index("render")

    def test_ties_break_alphabetically(self):
        registry = _registry({"c": (), "a": (), "b": ()})
        assert registry.topological_order() == ("a", "b", "c")

    def test_selection_restricts_to_closure(self):
        registry = _registry({"a": (), "b": ("a",), "c": ()})
        assert registry.topological_order(["b"]) == ("a", "b")

    def test_order_is_independent_of_registration_order(self):
        edges = {"a": (), "b": ("a",), "c": ("a",), "d": ("b", "c")}
        forward = _registry(edges)
        backward = TaskRegistry(
            Task(name=n, fn=_noop, deps=edges[n]) for n in reversed(edges)
        )
        assert forward.topological_order() == backward.topological_order()

    def test_cycle_detected(self):
        registry = _registry({"a": ("b",), "b": ("a",)})
        with pytest.raises(PipelineError, match="cycle"):
            registry.topological_order()
