"""Artifact bytes are unchanged by the stats-kernel rewiring.

Companion to ``test_kernel_parity.py`` for the PR that batched the
Fisher grid and vectorized silhouette/DBSCAN: the ``platforms`` and
``clusters`` tasks must serialize to the same bytes as a recomputation
with the pre-batch scalar loops, so content-addressed artifact stores
stay warm.  (Batched Fisher p-values may differ from the scalar path in
the last ulp, but p-values only pass through Bonferroni threshold
comparisons and are never serialized — the artifact bytes cannot move.)
"""

import numpy as np

from repro.analysis import SimilarityMatrix
from repro.analysis.weighting import weighted_volume_by_category
from repro.core import Platform
from repro.pipeline import artifact_bytes, default_registry
from repro.pipeline.tasks import _f
from repro.stats.affinity import affinity_propagation
from repro.stats.correction import bonferroni
from repro.stats.descriptive import median
from repro.stats.fisher import normalized_difference, proportion_test
from repro.stats.silhouette import (
    SilhouetteReport,
    silhouette_samples_reference,
    similarity_to_distance,
)


def run_task(name, ctx, inputs=None):
    return default_registry().get(name).fn(ctx, inputs or {})


def scalar_platform_differences(
    dataset, labels, metric, month, top_n=10_000, alpha=0.05,
    effective_n=100_000,
):
    """The pre-batch per-cell proportion_test loop, verbatim."""
    windows_lists = dataset.select(Platform.WINDOWS, metric, month)
    android_lists = dataset.select(Platform.ANDROID, metric, month)
    shared = sorted(set(windows_lists) & set(android_lists))
    min_significant = len(shared) // 2 + 1
    dist_w = dataset.distribution(Platform.WINDOWS, metric)
    dist_a = dataset.distribution(Platform.ANDROID, metric)

    scores, significant, volumes_a, volumes_w = {}, {}, {}, {}
    for country in shared:
        vol_w = weighted_volume_by_category(
            windows_lists[country], labels, dist_w, top_n
        )
        vol_a = weighted_volume_by_category(
            android_lists[country], labels, dist_a, top_n
        )
        categories = sorted(set(vol_w) | set(vol_a))
        p_values = [
            proportion_test(
                vol_a.get(c, 0.0), vol_w.get(c, 0.0), effective_n
            ).p_value
            for c in categories
        ]
        rejected = bonferroni(p_values, alpha)
        for category, reject in zip(categories, rejected):
            a = vol_a.get(category, 0.0)
            w = vol_w.get(category, 0.0)
            volumes_a.setdefault(category, []).append(a)
            volumes_w.setdefault(category, []).append(w)
            if reject:
                significant[category] = significant.get(category, 0) + 1
                scores.setdefault(category, []).append(normalized_difference(a, w))

    out = []
    for category, n_sig in sorted(significant.items()):
        if n_sig < min_significant:
            continue
        out.append({
            "category": category,
            "median_score": _f(median(scores[category])),
            "n_significant": n_sig,
            "n_countries": len(shared),
            "median_android": _f(median(volumes_a[category])),
            "median_windows": _f(median(volumes_w[category])),
        })
    out.sort(key=lambda d: d["median_score"])
    return out


class TestPlatformsBytes:
    def test_unchanged(self, pipeline_ctx):
        labels = run_task("labels", pipeline_ctx)
        got = run_task("platforms", pipeline_ctx, {"labels": labels})
        want_metrics = [
            {
                "metric": metric.value,
                "differences": scalar_platform_differences(
                    pipeline_ctx.dataset, labels, metric, pipeline_ctx.month
                ),
            }
            for metric in pipeline_ctx.dataset.metrics
        ]
        want = {"metrics": want_metrics}
        assert (
            artifact_bytes("platforms", "parity", got)
            == artifact_bytes("platforms", "parity", want)
        )


def scalar_cluster_report(matrix):
    """cluster_countries with the scalar silhouette loop, pre-sort
    assembly order preserved."""
    result = affinity_propagation(matrix.values, damping=0.7, seed=0)
    distances = similarity_to_distance(matrix.values)
    if result.n_clusters >= 2:
        silhouettes = silhouette_samples_reference(distances, result.labels)
        average = silhouettes.average
        per_cluster = silhouettes.per_cluster()
    else:
        silhouettes = SilhouetteReport(
            values=np.zeros(len(matrix.countries)), labels=result.labels
        )
        average = 0.0
        per_cluster = {0: 0.0}

    clusters = []
    for cluster_index in range(result.n_clusters):
        members = [
            matrix.countries[int(i)] for i in result.members(cluster_index)
        ]
        clusters.append({
            "exemplar": matrix.countries[int(result.exemplars[cluster_index])],
            "silhouette": per_cluster.get(cluster_index, 0.0),
            "members": members,
        })
    clusters.sort(key=lambda c: -c["silhouette"])
    outliers = sorted(
        member for c in clusters if len(c["members"]) <= 1
        for member in c["members"]
    )
    return {
        "n_clusters": result.n_clusters,
        "average_silhouette": _f(average),
        "clusters": [
            dict(c, silhouette=_f(c["silhouette"])) for c in clusters
        ],
        "outliers": outliers,
    }


class TestClustersBytes:
    def test_unchanged(self, pipeline_ctx):
        similarity = run_task("similarity", pipeline_ctx)
        got = run_task("clusters", pipeline_ctx, {"similarity": similarity})
        matrix = SimilarityMatrix(
            tuple(similarity["countries"]),
            np.asarray(similarity["values"], dtype=float),
        )
        want = scalar_cluster_report(matrix)
        assert (
            artifact_bytes("clusters", "parity", got)
            == artifact_bytes("clusters", "parity", want)
        )
