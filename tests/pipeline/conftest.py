"""Pipeline fixtures: a two-month dataset plus toy registries.

The real-analysis fixtures reuse the session generator from the top
conftest; the toy-registry helpers build tiny synthetic DAGs so runner
semantics (ordering, isolation, caching) are tested without paying for
any actual analysis.
"""

from __future__ import annotations

import pytest

from repro.core import Metric, Month, Platform
from repro.pipeline import TaskContext


@pytest.fixture(scope="session")
def pipeline_dataset(generator):
    """Both platforms/metrics over two months, four countries."""
    return generator.generate(
        countries=("US", "KR", "JP", "BR"),
        platforms=Platform.studied(),
        metrics=Metric.studied(),
        months=(Month(2021, 12), Month(2022, 2)),
    )


@pytest.fixture(scope="session")
def pipeline_ctx(pipeline_dataset, generator):
    return TaskContext(pipeline_dataset, config=generator.config)
