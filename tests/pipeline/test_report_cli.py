"""End-to-end ``repro report`` / registry-driven ``repro analyze``."""

import json

import pytest

from repro.cli import _build_parser, main


@pytest.fixture(scope="module")
def dataset_dir(tmp_path_factory):
    out = tmp_path_factory.mktemp("report-cli") / "ds"
    code = main([
        "generate", "--small", "--out", str(out),
        "--countries", "US", "KR", "JP",
        "--months", "2021-12", "2022-02",
    ])
    assert code == 0
    return out


class TestReportCommand:
    def test_cold_run_writes_run_dir(self, dataset_dir, tmp_path, capsys):
        code = main([
            "report", "--data", str(dataset_dir),
            "--out", str(tmp_path / "run"), "--jobs", "4",
        ])
        assert code == 0
        captured = capsys.readouterr().out
        assert "failed 0" in captured

        run = tmp_path / "run"
        summary = json.loads((run / "run.json").read_text())
        assert summary["counts"]["failed"] == 0
        assert summary["counts"]["executed"] > 0
        assert (run / "REPORT.txt").read_text().startswith("== ")
        assert (run / "artifacts" / "concentration.json").is_file()
        assert (run / "tables" / "concentration.txt").is_file()

    def test_second_identical_run_is_fully_cached(
        self, dataset_dir, tmp_path, capsys
    ):
        # The artifact store defaults to <data>/.artifacts, so two
        # invocations with different --out share every artifact: the
        # second run must execute zero tasks.
        code = main([
            "report", "--data", str(dataset_dir),
            "--out", str(tmp_path / "warm"), "--jobs", "4",
        ])
        assert code == 0
        capsys.readouterr()
        code = main([
            "report", "--data", str(dataset_dir),
            "--out", str(tmp_path / "warm2"), "--jobs", "4",
        ])
        assert code == 0
        summary = json.loads((tmp_path / "warm2" / "run.json").read_text())
        assert summary["counts"]["executed"] == 0
        assert summary["counts"]["cached"] > 0

    def test_serial_and_parallel_run_dirs_match(self, dataset_dir, tmp_path):
        main([
            "report", "--data", str(dataset_dir), "--no-artifacts",
            "--out", str(tmp_path / "serial"), "--jobs", "1",
            "--tasks", "concentration", "clusters",
        ])
        main([
            "report", "--data", str(dataset_dir), "--no-artifacts",
            "--out", str(tmp_path / "parallel"), "--jobs", "4",
            "--tasks", "concentration", "clusters",
        ])
        serial = sorted((tmp_path / "serial" / "artifacts").glob("*.json"))
        parallel = sorted((tmp_path / "parallel" / "artifacts").glob("*.json"))
        assert [p.name for p in serial] == [p.name for p in parallel]
        for a, b in zip(serial, parallel):
            assert a.read_bytes() == b.read_bytes()

    def test_task_subset_pulls_dependencies(self, dataset_dir, tmp_path):
        code = main([
            "report", "--data", str(dataset_dir), "--no-artifacts",
            "--out", str(tmp_path / "subset"),
            "--tasks", "endemic_categories",
        ])
        assert code == 0
        summary = json.loads((tmp_path / "subset" / "run.json").read_text())
        assert set(summary["order"]) == {
            "endemicity", "labels", "endemic_categories",
        }


class TestAnalyzeViaRegistry:
    def test_choices_come_from_the_registry(self):
        from repro.pipeline import default_registry

        parser_text = _build_parser().parse_args(
            ["analyze", "--data", "x", "--analysis", "endemicity"]
        )
        assert parser_text.analysis == "endemicity"
        with pytest.raises(SystemExit):
            _build_parser().parse_args(
                ["analyze", "--data", "x", "--analysis", "nonsense"]
            )
        assert "endemicity" in default_registry().names()

    def test_new_registry_analysis_runs(self, dataset_dir, capsys):
        code = main([
            "analyze", "--data", str(dataset_dir), "--analysis", "endemicity",
        ])
        assert code == 0
        assert "Endemicity" in capsys.readouterr().out

    def test_data_only_task_prints_json(self, dataset_dir, capsys):
        code = main([
            "analyze", "--data", str(dataset_dir), "--analysis", "has_app",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert isinstance(payload["sites"], list)

    def test_overlap_on_single_metric_dataset_exits_2(
        self, tmp_path, capsys
    ):
        out = tmp_path / "loads-only"
        main([
            "generate", "--small", "--out", str(out),
            "--countries", "US", "KR", "--metrics", "page_loads",
        ])
        capsys.readouterr()
        code = main(["analyze", "--data", str(out), "--analysis", "overlap"])
        assert code == 2
        assert "dataset lacks both metrics" in capsys.readouterr().err
