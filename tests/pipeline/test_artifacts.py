"""Artifact store: addressing, round-trips, corruption handling."""

from repro.pipeline import ArtifactStore, artifact_bytes


FP = "abc123"


class TestRoundTrip:
    def test_put_then_get(self, tmp_path):
        store = ArtifactStore(tmp_path)
        result = {"top1": 0.17, "curve": [1, 2, 3]}
        path = store.put(FP, "concentration", "k1", result)
        assert path.is_file()
        assert store.get(FP, "concentration", "k1") == result
        assert (FP, "concentration", "k1") in store
        assert store.stats.hits == 1 and store.stats.writes == 1

    def test_layout_is_fingerprint_dir_then_task_key_file(self, tmp_path):
        store = ArtifactStore(tmp_path)
        path = store.put(FP, "overlap", "deadbeef", {})
        assert path == tmp_path / FP / "overlap__deadbeef.json"

    def test_bytes_are_canonical_and_key_order_free(self, tmp_path):
        store = ArtifactStore(tmp_path)
        a = store.put(FP, "t", "k", {"b": 1, "a": 2}).read_bytes()
        b = store.put(FP, "t", "k", {"a": 2, "b": 1}).read_bytes()
        assert a == b == artifact_bytes("t", "k", {"a": 2, "b": 1})


class TestMisses:
    def test_absent_is_a_miss(self, tmp_path):
        store = ArtifactStore(tmp_path)
        assert store.get(FP, "concentration", "k1") is None
        assert store.stats.misses == 1

    def test_wrong_key_is_a_miss(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put(FP, "t", "k1", {"x": 1})
        assert store.get(FP, "t", "other") is None

    def test_corrupt_file_is_a_miss(self, tmp_path):
        store = ArtifactStore(tmp_path)
        path = store.put(FP, "t", "k1", {"x": 1})
        path.write_text("{torn", encoding="utf-8")
        assert store.get(FP, "t", "k1") is None

    def test_envelope_mismatch_is_a_miss(self, tmp_path):
        store = ArtifactStore(tmp_path)
        path = store.put(FP, "t", "k1", {"x": 1})
        # A file renamed to another task's address must not be served.
        other = store.path_for(FP, "stolen", "k1")
        path.rename(other)
        assert store.get(FP, "stolen", "k1") is None

    def test_no_tmp_droppings_after_put(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put(FP, "t", "k1", {"x": 1})
        leftovers = [p for p in (tmp_path / FP).iterdir()
                     if p.name.startswith(".")]
        assert leftovers == []
