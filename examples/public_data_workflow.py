#!/usr/bin/env python3
"""The public-data workflow: private telemetry → saved dataset → CrUX view.

Section 3.1 notes that a coarser version of the study data is public via
CrUX ("rank-order magnitude buckets ... aggregated both per-country and
globally").  This example walks the full downstream-user loop:

1. generate a private dataset and persist it to disk;
2. reload it (as a user without the generator would);
3. produce the CrUX-style public export;
4. show which analyses survive the coarsening and which do not.

Run:  python examples/public_data_workflow.py
"""

import tempfile
from pathlib import Path

from repro.core import Metric, Platform, REFERENCE_MONTH
from repro.export.crux import export_crux
from repro.export.io import load_dataset, save_dataset
from repro.report import render_table
from repro.synth import GeneratorConfig, TelemetryGenerator

COUNTRIES = ("US", "KR", "BR", "FR", "NG", "JP")


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-public-"))

    # 1. Private dataset, persisted.
    generator = TelemetryGenerator(GeneratorConfig.small())
    private = generator.generate(
        countries=COUNTRIES,
        platforms=(Platform.WINDOWS,),
        metrics=(Metric.PAGE_LOADS,),
        months=(REFERENCE_MONTH,),
    )
    root = save_dataset(private, workdir / "dataset")
    n_files = len(list((root / "lists").glob("*.txt")))
    print(f"saved {n_files} rank lists under {root}\n")

    # 2. Reload — this is all a downstream consumer needs.
    dataset = load_dataset(root)

    # 3. The public CrUX-style view.
    export = export_crux(dataset, Platform.WINDOWS, REFERENCE_MONTH)
    rows = []
    for country in COUNTRIES:
        buckets = export.per_country[country]
        head = sorted(export.sites_in_bucket(1_000, country=country))
        rows.append((country, len(buckets), len(head)))
    print(render_table(
        ("country", "sites published", "sites in 1K bucket"), rows,
        title="CrUX-style public export",
    ))
    print()

    # 4. What survives the coarsening?
    private_us = dataset.get("US", Platform.WINDOWS, Metric.PAGE_LOADS,
                             REFERENCE_MONTH)
    public_us = export.per_country["US"]
    # Survives: membership questions ("is this site top-1K in the US?").
    sample = private_us.top(3).sites
    for site in sample:
        assert public_us[site] == 1_000
    print(f"membership survives: {', '.join(sample)} are all in the US "
          f"1K bucket.")
    # Lost: rank order within a bucket.
    first, second = private_us[1], private_us[2]
    print(f"rank order is lost: privately {first} > {second}, publicly "
          f"both are just 'top {public_us[first]}'.")
    print("\nTakeaway: the public CrUX view answers 'who is popular' per "
          "country, but the paper's rank-sensitive analyses (weighted "
          "RBO, endemicity scores) genuinely need the private lists.")


if __name__ == "__main__":
    main()
