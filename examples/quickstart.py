#!/usr/bin/env python3
"""Quickstart: generate a small world and walk the main API surface.

Builds a test-sized synthetic telemetry dataset (45 countries, 1.5K-site
lists), prints the head of a few rank lists, and runs two one-liner
analyses — enough to see every moving part in under a minute.

Run:  python examples/quickstart.py
"""

import repro
from repro.analysis import (
    composition_panel,
    dominant_category,
    headline_concentration,
    metric_overlap,
)
from repro.core import Metric, Platform, REFERENCE_MONTH
from repro.report import render_shares, render_table
from repro.synth import GeneratorConfig, TelemetryGenerator


def main() -> None:
    # 1. Generate through the facade.  small=True is the quick-experiment
    #    scale; the default config is the paper-calibrated full scale
    #    (~1.1M sites).  Both platforms and metrics for the reference
    #    month (February 2022), all 45 study countries.
    dataset = repro.generate(small=True, seed=2022)
    print(dataset, "\n")

    # 2. The deep API is still there when an analysis needs generator
    #    ground truth (here: the category labels).
    generator = TelemetryGenerator(GeneratorConfig.small(seed=2022))
    labels = generator.site_categories()

    # 3. Look at some rank lists.
    rows = []
    for country in ("US", "KR", "BR"):
        ranked = dataset.get(country, Platform.WINDOWS, Metric.PAGE_LOADS,
                             REFERENCE_MONTH)
        rows.append((country, ", ".join(ranked.top(5).sites)))
    print(render_table(("country", "top 5 by page loads"), rows,
                       title="Windows page loads, February 2022"))
    print()

    # 4. Traffic concentration (Figure 1's headline numbers).
    dist = dataset.distribution(Platform.WINDOWS, Metric.PAGE_LOADS)
    headline = headline_concentration(dist, Platform.WINDOWS, Metric.PAGE_LOADS)
    print(f"The top site gets {headline.top1:.0%} of Windows page loads; "
          f"{headline.sites_for_quarter} sites cover 25%, and the top 10K "
          f"cover {headline.top10k:.0%}.\n")

    # 5. What do people use the web for?  (Figure 2.)
    panel = composition_panel(
        dataset, labels, Platform.WINDOWS, Metric.TIME_ON_PAGE,
        REFERENCE_MONTH, top_n=1_500, perspective="traffic",
    )
    print(render_shares(panel.shares, "Where desktop time goes", top=6))
    print(f"\nDominant desktop time sink: {dominant_category(panel)}\n")

    # 6. Do page loads and time on page agree?  (Section 4.4.)
    overlap = metric_overlap(dataset, Platform.WINDOWS, REFERENCE_MONTH,
                             top_n=1_500)
    print(f"Loads-vs-time list intersection: median "
          f"{overlap.intersection_stats.median:.0%} across 45 countries "
          f"(Spearman {overlap.spearman_stats.median:.2f} inside it).")


if __name__ == "__main__":
    main()
