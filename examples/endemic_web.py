#!/usr/bin/env python3
"""Global vs national popularity (the Section 5.1-5.2 pipeline).

Builds website popularity curves, computes endemicity scores, splits
globally from nationally popular sites, and shows how the mix changes
down the rank list — the paper's core geographic result.

Run:  python examples/endemic_web.py
"""

from repro.analysis import (
    classify_shape,
    exclusivity_fraction,
    global_share_by_rank,
    score_endemicity,
)
from repro.core import Metric, Platform, REFERENCE_MONTH
from repro.report import render_series, render_table
from repro.synth import GeneratorConfig, TelemetryGenerator


def main() -> None:
    generator = TelemetryGenerator(GeneratorConfig.small())
    dataset = generator.generate(
        platforms=(Platform.WINDOWS,),
        metrics=(Metric.PAGE_LOADS,),
        months=(REFERENCE_MONTH,),
    )
    lists = dataset.select(Platform.WINDOWS, Metric.PAGE_LOADS, REFERENCE_MONTH)

    # 1. Endemicity scores over every site that is top-200 somewhere.
    result = score_endemicity(lists, eligible_rank=200)
    fraction, population = exclusivity_fraction(lists, head_rank=200)
    print(f"Scored {len(result.curves)} sites; {fraction:.0%} of the "
          f"{population} head sites appear in no other country's list "
          f"(paper: 53.9%).")
    print(f"Globally popular: {result.global_fraction:.1%} "
          f"(paper Table 2: ~2%).\n")

    # 2. Example popularity curves.
    uni = generator.universe
    by_site = {c.site: c for c in result.curves}
    rows = []
    for name in ("google", "netflix", "naver", "hbomax", "bbc"):
        canonical = uni.canonical_of(name)
        curve = by_site.get(canonical)
        if curve is None:
            continue
        rows.append((
            name, classify_shape(curve), f"{curve.endemicity_score():.0f}",
            curve.n_present,
        ))
    print(render_table(
        ("site", "curve shape", "endemicity score", "countries present"),
        rows,
        title="Example website popularity curves (Figure 6 / Table 1)",
    ))
    print()

    # 3. Global share by rank bucket (Figure 9).
    buckets = ((1, 10), (11, 20), (21, 50), (51, 100), (101, 200))
    shares = global_share_by_rank(lists, result, buckets=buckets)
    print(render_series(
        {"globally-popular share": [row.stats.median for row in shares]},
        x_labels=[f"{a}-{b}" for a, b in buckets],
        title="Share of globally popular sites per rank bucket",
    ))
    print("\nTakeaway: a global top list describes almost nobody's web — "
          "most of every country's list is sites the rest of the world "
          "never sees.")


if __name__ == "__main__":
    main()
