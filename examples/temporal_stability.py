#!/usr/bin/env python3
"""Is one month of data enough?  (the Section 4.5 pipeline).

Generates six months of telemetry, measures month-over-month list
similarity, highlights the December anomaly, and tracks the December
swing in e-commerce vs education traffic.

Run:  python examples/temporal_stability.py
"""

from repro.analysis import (
    adjacent_month_series,
    anchored_series,
    category_share_over_months,
    december_anomaly,
)
from repro.core import Metric, Platform, STUDY_MONTHS
from repro.report import render_series, render_table
from repro.synth import GeneratorConfig, TelemetryGenerator

COUNTRIES = ("US", "BR", "JP", "FR", "NG", "KR", "IN", "MX")


def main() -> None:
    generator = TelemetryGenerator(GeneratorConfig.small())
    labels = generator.site_categories()
    dataset = generator.generate(
        countries=COUNTRIES,
        platforms=(Platform.WINDOWS,),
        metrics=(Metric.PAGE_LOADS,),
        months=STUDY_MONTHS,
    )

    # 1. Adjacent-month similarity per rank bucket.
    rows = []
    for bucket in (20, 100, 1_500):
        series = adjacent_month_series(
            dataset, Platform.WINDOWS, Metric.PAGE_LOADS, bucket
        )
        for pair in series:
            rows.append((
                f"{pair.month_a}->{pair.month_b}", bucket,
                f"{pair.intersection.median:.0%}",
                f"{pair.spearman.median:.2f}",
            ))
    print(render_table(
        ("months", "bucket", "intersection", "Spearman"), rows,
        title="Month-over-month stability (Section 4.5)",
    ))
    print()

    # 2. The December anomaly.
    anomaly = december_anomaly(dataset, Platform.WINDOWS, Metric.PAGE_LOADS,
                               bucket=1_500)
    print(f"December-adjacent intersection: {anomaly.december_intersection:.0%} "
          f"vs {anomaly.other_intersection:.0%} for other month pairs "
          f"(gap {anomaly.gap:.1%}) -> December is the odd month out.\n")

    # 3. Decay of similarity to September.
    series = anchored_series(dataset, Platform.WINDOWS, Metric.PAGE_LOADS, 1_500)
    print(render_series(
        {"similarity to Sep 2021": [s.intersection.median for s in series]},
        x_labels=[str(s.month_b) for s in series],
        title="Similarity to the first study month",
    ))
    print()

    # 4. Seasonal category drift.
    drift = {
        category: category_share_over_months(
            dataset, labels, Platform.WINDOWS, Metric.PAGE_LOADS, category,
            top_n=1_500,
        )
        for category in ("Ecommerce", "Educational Institutions")
    }
    print(render_series(
        {category: list(shares.values()) for category, shares in drift.items()},
        x_labels=[str(m) for m in STUDY_MONTHS],
        title="Category share of top sites by month",
        value_format="{:.3f}",
    ))
    print("\nTakeaway: months are similar, December isn't representative — "
          "don't calibrate a study on holiday-season data.")


if __name__ == "__main__":
    main()
