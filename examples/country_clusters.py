#!/usr/bin/env python3
"""Country clusters from browsing similarity (the Section 5.3 pipeline).

Computes the traffic-weighted RBO similarity between every pair of
countries, clusters them with affinity propagation, validates with
silhouette coefficients, and prints the clusters next to each country's
languages — making the language/geography structure visible.

Run:  python examples/country_clusters.py [--full]

With --full the paper-scale universe is used (slower, ~2 min); the
default uses the small test universe.
"""

import sys

from repro.analysis import cluster_countries, rbo_matrix_for
from repro.analysis.clustering import clusters_share_language_or_region
from repro.core import Metric, Platform, REFERENCE_MONTH
from repro.report import render_heatmap, render_table
from repro.synth import GeneratorConfig, TelemetryGenerator
from repro.world import get_country


def main(full: bool = False) -> None:
    config = GeneratorConfig() if full else GeneratorConfig.small()
    generator = TelemetryGenerator(config)
    dataset = generator.generate(
        platforms=(Platform.WINDOWS,),
        metrics=(Metric.PAGE_LOADS,),
        months=(REFERENCE_MONTH,),
    )

    # Pairwise traffic-weighted RBO (Figure 10).
    matrix = rbo_matrix_for(
        dataset, Platform.WINDOWS, Metric.PAGE_LOADS, REFERENCE_MONTH,
        depth=config.list_size,
    )
    subset = ["DZ", "EG", "MA", "TN", "MX", "AR", "CL", "BR", "US", "GB",
              "AU", "FR", "BE", "NL", "TW", "HK", "JP", "KR"]
    import numpy as np
    idx = [matrix.countries.index(c) for c in subset]
    print(render_heatmap(subset, matrix.values[np.ix_(idx, idx)],
                         title="Traffic-weighted RBO (subset of countries)"))
    print()

    # Affinity propagation + silhouettes (Figures 11 & 21).
    report = cluster_countries(matrix)
    rows = []
    for cluster in report.clusters:
        languages = sorted({
            lang for code in cluster.members
            for lang in get_country(code).languages
        })
        rows.append((
            cluster.exemplar,
            f"{cluster.silhouette:+.2f}",
            " ".join(cluster.members),
            ",".join(languages),
        ))
    print(render_table(
        ("exemplar", "SC", "members", "languages"), rows,
        title=f"{report.n_clusters} clusters "
              f"(average silhouette {report.average_silhouette:+.2f})",
    ))
    coherence = clusters_share_language_or_region(report)
    print(f"\n{coherence:.0%} of multi-country clusters share a language "
          f"or region — the paper's central geographic finding.")
    print(f"Outlier-ish countries: "
          f"{', '.join(report.outliers(max_size=2)) or 'none'}")


if __name__ == "__main__":
    main(full="--full" in sys.argv)
