#!/usr/bin/env python3
"""Popularity metric matters (the Section 4.4 pipeline).

Shows how the choice between page loads and time on page changes what a
"top list" contains: list overlap, rank correlation, the sites that
lean hardest toward each metric, and the categories behind the split.

Run:  python examples/metric_choice.py
"""

from repro.analysis import (
    LOADS_LEANING,
    TIME_LEANING,
    classify_leaning,
    leaning_composition,
    metric_overlap,
)
from repro.core import Metric, Platform, REFERENCE_MONTH
from repro.report import render_table
from repro.synth import GeneratorConfig, TelemetryGenerator


def main() -> None:
    generator = TelemetryGenerator(GeneratorConfig.small())
    labels = generator.site_categories()
    dataset = generator.generate(
        platforms=Platform.studied(),
        metrics=Metric.studied(),
        months=(REFERENCE_MONTH,),
    )

    # 1. How much do the two metrics' top lists agree?
    rows = []
    for platform in Platform.studied():
        overlap = metric_overlap(dataset, platform, REFERENCE_MONTH)
        rows.append((
            platform.value,
            f"{overlap.intersection_stats.median:.0%}",
            f"{overlap.spearman_stats.median:.2f}",
        ))
    print(render_table(
        ("platform", "median top-list intersection", "median Spearman"),
        rows,
        title="Page loads vs time on page (Section 4.4)",
    ))
    print()

    # 2. The sites that lean hardest toward one metric, in one country.
    loads = dataset.get("US", Platform.WINDOWS, Metric.PAGE_LOADS, REFERENCE_MONTH)
    time = dataset.get("US", Platform.WINDOWS, Metric.TIME_ON_PAGE, REFERENCE_MONTH)
    classes = classify_leaning(loads, time, dataset, Platform.WINDOWS, "US")
    head_rows = []
    for leaning in (LOADS_LEANING, TIME_LEANING):
        sites = classes.sites_in(leaning)
        ranked = sorted(sites, key=lambda s: loads.rank_or(s, 10**9))[:5]
        head_rows.append((leaning, ", ".join(ranked)))
    print(render_table(("leaning", "highest-ranked examples (US)"), head_rows))
    print()

    # 3. Which categories drive the split (Figure 5).
    composition = leaning_composition(
        dataset, labels, Platform.WINDOWS, REFERENCE_MONTH,
        countries=("US", "BR", "JP", "FR", "DE", "MX", "IN", "NG"),
    )
    print(render_table(
        ("class", "overrepresented categories"),
        [
            (LOADS_LEANING, ", ".join(
                composition.overrepresented_in(LOADS_LEANING, min_share=0.01)[:5])),
            (TIME_LEANING, ", ".join(
                composition.overrepresented_in(TIME_LEANING, min_share=0.01)[:5])),
        ],
        title="Categories behind each leaning (Figure 5)",
    ))
    print("\nTakeaway: 'top sites' by page loads and by time on page are "
          "meaningfully different lists — pick the metric that matches "
          "the question.")


if __name__ == "__main__":
    main()
